package core

import "repro/internal/feature"

// Interestingness weighs feature types when scoring differentiation —
// the paper's closing future-work item ("considering more factors
// (e.g., interestingness) when selecting features"). A weight of 1 is
// neutral; larger weights make differences in that type count more.
type Interestingness func(feature.Type) float64

// UniformInterest weighs every type equally (plain DoD).
func UniformInterest(feature.Type) float64 { return 1 }

// ContrastInterest weighs a type by how spread-out its top-value
// frequencies are across the compared results: types on which results
// genuinely disagree (one says 90%, another 10%) are more interesting
// to show than types that differ only barely past the threshold. The
// returned function is fixed for the given result set.
func ContrastInterest(stats []*feature.Stats) Interestingness {
	weights := make(map[feature.Type]float64)
	for _, s := range stats {
		for _, t := range s.AllTypes() {
			if _, done := weights[t]; done {
				continue
			}
			lo, hi := 1.0, 0.0
			present := 0
			for _, o := range stats {
				if !o.HasType(t) {
					continue
				}
				present++
				top := o.ValuesOf(t)[0]
				rel := o.Rel(t, top.Value)
				if rel < lo {
					lo = rel
				}
				if rel > hi {
					hi = rel
				}
			}
			if present < 2 {
				weights[t] = 1
				continue
			}
			weights[t] = 1 + (hi - lo) // spread in [0,1] adds up to +1
		}
	}
	return func(t feature.Type) float64 {
		if w, ok := weights[t]; ok {
			return w
		}
		return 1
	}
}

// WeightedDoD is TotalDoD with per-type interestingness weights: each
// differentiable shared type contributes its weight instead of 1.
func WeightedDoD(dfss []*DFS, x float64, interest Interestingness) float64 {
	if interest == nil {
		interest = UniformInterest
	}
	total := 0.0
	for i := 0; i < len(dfss); i++ {
		for j := i + 1; j < len(dfss); j++ {
			a, b := dfss[i], dfss[j]
			for t, da := range a.Sel {
				db, ok := b.Sel[t]
				if !ok {
					continue
				}
				if typeDiffers(a.Stats, b.Stats, t, da, db, x) {
					total += interest(t)
				}
			}
		}
	}
	return total
}

// WeightedGreedy grows all DFSs together like GreedyGlobal but scores
// moves by weighted marginal gain, and weights the frequency tie-break
// too — so interesting types win both when gains compete and during
// the zero-gain bootstrap picks that seed coordination. With
// UniformInterest it reduces to GreedyGlobal.
func WeightedGreedy(stats []*feature.Stats, opts Options, interest Interestingness) []*DFS {
	opts = opts.normalized()
	if interest == nil {
		interest = UniformInterest
	}
	dfss := newDFSs(stats)
	for {
		type candidate struct {
			i     int
			m     move
			gain  float64
			score padScore
		}
		best := candidate{i: -1}
		for i, d := range dfss {
			if d.Sel.Size() >= opts.SizeBound {
				continue
			}
			for _, m := range growMoves(d) {
				w := interest(m.t)
				g := float64(typeDelta(dfss, i, m.t, d.Sel[m.t], m.depth, opts.Threshold)) * w
				sc := scoreMove(d.Stats, m)
				sc.rel *= w
				if best.i == -1 || g > best.gain ||
					(g == best.gain && sc.better(best.score)) {
					best = candidate{i: i, m: m, gain: g, score: sc}
				}
			}
		}
		if best.i == -1 {
			break
		}
		applyMove(dfss[best.i].Sel, best.m)
	}
	return dfss
}
