package core

import (
	"fmt"
	"sort"

	"repro/internal/feature"
)

// DefaultThreshold is the paper's empirically chosen differentiation
// threshold: two relative frequencies differ if they are more than 10%
// (of the smaller one) apart.
const DefaultThreshold = 0.10

// DefaultSizeBound is a reasonable default for the per-result DFS size
// limit L when the user does not specify one.
const DefaultSizeBound = 10

// Options configures DFS generation.
type Options struct {
	// SizeBound is L, the maximum number of features per DFS.
	// Zero selects DefaultSizeBound.
	SizeBound int
	// Threshold is x: the relative-difference fraction above which two
	// frequencies of the same feature differentiate two results.
	// Zero selects DefaultThreshold.
	Threshold float64
	// MaxRounds bounds the coordinate-ascent rounds; zero means no
	// bound (the algorithms terminate anyway because total DoD is a
	// bounded integer that strictly increases every accepted step).
	MaxRounds int
	// Pad, when true, fills any leftover budget with the most
	// significant remaining features after optimization. Padding never
	// lowers DoD (DoD is monotone under selection growth) and makes
	// the comparison table a richer summary.
	Pad bool
}

func (o Options) normalized() Options { return o.Normalized() }

// Normalized resolves defaulted fields to their canonical values:
// non-positive SizeBound and Threshold become DefaultSizeBound and
// DefaultThreshold, and a negative MaxRounds becomes 0 (unbounded).
// Every generator applies it internally; caching layers use it so
// option sets that select the same behaviour share one cache key.
func (o Options) Normalized() Options {
	if o.SizeBound <= 0 {
		o.SizeBound = DefaultSizeBound
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MaxRounds < 0 {
		o.MaxRounds = 0
	}
	return o
}

// Selection maps each chosen feature type to its value depth d >= 1:
// the DFS contains the type's top-d values (by occurrence). A nil
// Selection is empty.
type Selection map[feature.Type]int

// Clone returns an independent copy.
func (s Selection) Clone() Selection {
	out := make(Selection, len(s))
	for t, d := range s {
		out[t] = d
	}
	return out
}

// Size returns the number of features selected: the sum of depths.
func (s Selection) Size() int {
	n := 0
	for _, d := range s {
		n += d
	}
	return n
}

// DFS is the Differentiation Feature Set of one result: its statistics
// plus the current selection.
type DFS struct {
	Stats *feature.Stats
	Sel   Selection
}

// Features returns the selected features in deterministic order
// (entities sorted, types by significance, values by occurrence).
func (d *DFS) Features() []feature.Feature {
	var out []feature.Feature
	for _, e := range d.Stats.Entities() {
		for _, t := range d.Stats.TypesOf(e) {
			depth := d.Sel[t]
			vals := d.Stats.ValuesOf(t)
			for i := 0; i < depth && i < len(vals); i++ {
				out = append(out, feature.Feature{Type: t, Value: vals[i].Value})
			}
		}
	}
	return out
}

// Size returns the number of features in the DFS.
func (d *DFS) Size() int { return d.Sel.Size() }

// Validate checks the validity desideratum: per entity, selected types
// must form a prefix of the significance order; per type, the depth
// must be between 1 and the number of values; and the total size must
// not exceed bound (ignored when bound <= 0).
func (d *DFS) Validate(bound int) error {
	perEntity := make(map[string][]feature.Type)
	for t, depth := range d.Sel {
		if !d.Stats.HasType(t) {
			return fmt.Errorf("core: selection contains type %s absent from result %q", t, d.Stats.Label)
		}
		if depth < 1 {
			return fmt.Errorf("core: type %s has depth %d < 1", t, depth)
		}
		if n := len(d.Stats.ValuesOf(t)); depth > n {
			return fmt.Errorf("core: type %s has depth %d > %d values", t, depth, n)
		}
		perEntity[t.Entity] = append(perEntity[t.Entity], t)
	}
	for e, selected := range perEntity {
		order := d.Stats.TypesOf(e)
		k := len(selected)
		if k > len(order) {
			return fmt.Errorf("core: entity %s selects %d of %d types", e, k, len(order))
		}
		inPrefix := make(map[feature.Type]bool, k)
		for _, t := range order[:k] {
			inPrefix[t] = true
		}
		for _, t := range selected {
			if !inPrefix[t] {
				return fmt.Errorf("core: entity %s: type %s selected out of significance order", e, t)
			}
		}
	}
	if bound > 0 && d.Sel.Size() > bound {
		return fmt.Errorf("core: DFS size %d exceeds bound %d", d.Sel.Size(), bound)
	}
	return nil
}

// relDiffer reports whether relative frequencies a and b differ by
// more than threshold x (fraction of the smaller). A zero frequency
// against a positive one always differs (the ratio is unbounded).
func relDiffer(a, b, x float64) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == lo {
		return false
	}
	if lo == 0 {
		return hi > 0
	}
	return (hi-lo)/lo > x
}

// typeDiffers reports whether results a and b, with value depths da
// and db for shared type t, are differentiable in t: some value shown
// by either side has relative frequencies differing by more than x.
// The hot path of every algorithm; depths are small, so the b-side
// dedup is a linear scan over a's shown prefix rather than a map.
func typeDiffers(a, b *feature.Stats, t feature.Type, da, db int, x float64) bool {
	avals := a.ValuesOf(t)
	if da > len(avals) {
		da = len(avals)
	}
	for _, vc := range avals[:da] {
		if relDiffer(a.Rel(t, vc.Value), b.Rel(t, vc.Value), x) {
			return true
		}
	}
	bvals := b.ValuesOf(t)
	if db > len(bvals) {
		db = len(bvals)
	}
outer:
	for _, vc := range bvals[:db] {
		for _, avc := range avals[:da] {
			if avc.Value == vc.Value {
				continue outer
			}
		}
		if relDiffer(a.Rel(t, vc.Value), b.Rel(t, vc.Value), x) {
			return true
		}
	}
	return false
}

// PairDoD returns the degree of differentiation of two DFSs: the
// number of feature types selected in both whose shown values expose a
// more-than-x relative difference.
func PairDoD(a, b *DFS, x float64) int {
	dod := 0
	for t, da := range a.Sel {
		db, ok := b.Sel[t]
		if !ok {
			continue
		}
		if typeDiffers(a.Stats, b.Stats, t, da, db, x) {
			dod++
		}
	}
	return dod
}

// TotalDoD returns the summed DoD over all pairs of DFSs —
// Desideratum 3's objective.
func TotalDoD(dfss []*DFS, x float64) int {
	total := 0
	for i := 0; i < len(dfss); i++ {
		for j := i + 1; j < len(dfss); j++ {
			total += PairDoD(dfss[i], dfss[j], x)
		}
	}
	return total
}

// resultDoD returns Σ_j PairDoD(dfss[i], dfss[j]) for j ≠ i — the part
// of the objective affected by changing result i's selection.
func resultDoD(dfss []*DFS, i int, x float64) int {
	sum := 0
	for j := range dfss {
		if j != i {
			sum += PairDoD(dfss[i], dfss[j], x)
		}
	}
	return sum
}

// newDFSs wraps stats into DFS shells with empty selections.
func newDFSs(stats []*feature.Stats) []*DFS {
	out := make([]*DFS, len(stats))
	for i, s := range stats {
		out[i] = &DFS{Stats: s, Sel: make(Selection)}
	}
	return out
}

// candidateGrow enumerates the grow moves available to d: deepening a
// selected type by one value or opening the next type of an entity at
// depth 1. Returned as (type, newDepth) pairs in deterministic order.
type move struct {
	t     feature.Type
	depth int // new depth after the move (0 = remove entirely)
}

func growMoves(d *DFS) []move {
	var out []move
	for _, e := range d.Stats.Entities() {
		order := d.Stats.TypesOf(e)
		k := 0
		for _, t := range order {
			if _, ok := d.Sel[t]; ok {
				k++
			} else {
				break
			}
		}
		for _, t := range order[:k] {
			if depth := d.Sel[t]; depth < len(d.Stats.ValuesOf(t)) {
				out = append(out, move{t: t, depth: depth + 1})
			}
		}
		if k < len(order) {
			out = append(out, move{t: order[k], depth: 1})
		}
	}
	return out
}

func shrinkMoves(d *DFS) []move {
	var out []move
	for _, e := range d.Stats.Entities() {
		order := d.Stats.TypesOf(e)
		k := 0
		for _, t := range order {
			if _, ok := d.Sel[t]; ok {
				k++
			} else {
				break
			}
		}
		for i, t := range order[:k] {
			depth := d.Sel[t]
			if depth >= 2 {
				out = append(out, move{t: t, depth: depth - 1})
			} else if i == k-1 {
				// Only the last type of the prefix may be dropped.
				out = append(out, move{t: t, depth: 0})
			}
		}
	}
	return out
}

func applyMove(sel Selection, m move) {
	if m.depth == 0 {
		delete(sel, m.t)
	} else {
		sel[m.t] = m.depth
	}
}

// prefixLen returns how many types of entity e are selected in sel
// (they always form a prefix for valid selections).
func prefixLen(stats *feature.Stats, sel Selection, e string) int {
	k := 0
	for _, t := range stats.TypesOf(e) {
		if _, ok := sel[t]; ok {
			k++
		} else {
			break
		}
	}
	return k
}

// pad fills leftover budget with the most *frequent* unselected
// features (valid growth only), mirroring how a summary spends space:
// each candidate grow move is scored by the relative frequency of the
// value it would reveal, so a product's singleton attributes (name,
// rating — frequency 1.0 within their entity) surface before a rare
// fourth-ranked pro. This is also the "valid top-fill" starting point
// of both local-search algorithms; scoring by value frequency rather
// than raw type totals keeps the initial summaries diverse across
// entities, which matters because a type can only ever differentiate
// once both sides select it.
func pad(d *DFS, bound int) {
	for d.Sel.Size() < bound {
		moves := growMoves(d)
		if len(moves) == 0 {
			return
		}
		best := -1
		for i := range moves {
			if best == -1 || betterPadMove(d.Stats, moves[i], moves[best]) {
				best = i
			}
		}
		applyMove(d.Sel, moves[best])
	}
}

// padScore ranks a grow move for padding purposes: the relative
// frequency of the value it reveals, then raw count, then type
// significance. Scores are comparable across results, which
// GreedyGlobal relies on for its tie-breaking.
type padScore struct {
	rel   float64
	count int
	total int
}

func scoreMove(s *feature.Stats, m move) padScore {
	vc := s.ValuesOf(m.t)[m.depth-1]
	return padScore{
		rel:   float64(vc.Count) / float64(s.GroupCount(m.t.Entity)),
		count: vc.Count,
		total: s.TypeTotal(m.t),
	}
}

func (p padScore) better(q padScore) bool {
	if p.rel != q.rel {
		return p.rel > q.rel
	}
	if p.count != q.count {
		return p.count > q.count
	}
	return p.total > q.total
}

// betterPadMove orders grow moves within one result by padScore, with
// deterministic type/depth tie-breaks.
func betterPadMove(s *feature.Stats, a, b move) bool {
	pa, pb := scoreMove(s, a), scoreMove(s, b)
	if pa.better(pb) {
		return true
	}
	if pb.better(pa) {
		return false
	}
	if a.t != b.t {
		return a.t.Less(b.t)
	}
	return a.depth < b.depth
}

// SortFeatures orders features deterministically for display.
func SortFeatures(fs []feature.Feature) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Type != fs[j].Type {
			return fs[i].Type.Less(fs[j].Type)
		}
		return fs[i].Value < fs[j].Value
	})
}
