package core

import "repro/internal/feature"

// SingleSwap generates DFSs with the paper's single-swap method: start
// every result from the valid frequency top-fill (the natural summary)
// and repeatedly apply the first add / remove / change-one-feature
// move that strictly increases total DoD, cycling over results until
// no single move helps. The fixpoint is single-swap optimal: changing
// or adding any one feature of any DFS cannot increase DoD.
//
// Changing type t in result i only perturbs the DoD terms of t in
// pairs (i, j), so moves are scored by a per-type delta rather than by
// re-evaluating the whole objective — this is what keeps single-swap
// cheap per step (Figure 4(b)).
func SingleSwap(stats []*feature.Stats, opts Options) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	for _, d := range dfss {
		pad(d, opts.SizeBound) // top-fill start: the valid significance summary
	}
	singleSwapAscend(dfss, opts)
	if opts.Pad {
		for _, d := range dfss {
			pad(d, opts.SizeBound)
		}
	}
	return dfss
}

// singleSwapAscend cycles first-improving moves over the results until
// none helps. Sequential across results, like multiSwapAscend.
func singleSwapAscend(dfss []*DFS, opts Options) {
	rounds := 0
	for {
		improved := false
		for i := range dfss {
			if improveOnce(dfss, i, opts) {
				improved = true
			}
		}
		rounds++
		if !improved || (opts.MaxRounds > 0 && rounds >= opts.MaxRounds) {
			break
		}
	}
}

// typeDelta returns the change in Σ_j DoD(D_i, D_j) caused by moving
// type t of result i from depth dOld to dNew (depth 0 = unselected).
func typeDelta(dfss []*DFS, i int, t feature.Type, dOld, dNew int, x float64) int {
	d := dfss[i]
	delta := 0
	for j, other := range dfss {
		if j == i {
			continue
		}
		dj, ok := other.Sel[t]
		if !ok {
			continue
		}
		before := dOld > 0 && typeDiffers(d.Stats, other.Stats, t, dOld, dj, x)
		after := dNew > 0 && typeDiffers(d.Stats, other.Stats, t, dNew, dj, x)
		if after && !before {
			delta++
		} else if before && !after {
			delta--
		}
	}
	return delta
}

// improveOnce applies first-improving single-swap moves to result i
// until none exists. Returns whether anything changed.
func improveOnce(dfss []*DFS, i int, opts Options) bool {
	d := dfss[i]
	changed := false
	for {
		applied := false

		// Pure grows (when under budget): adding a feature.
		if d.Sel.Size() < opts.SizeBound {
			for _, g := range growMoves(d) {
				if typeDelta(dfss, i, g.t, d.Sel[g.t], g.depth, opts.Threshold) > 0 {
					applyMove(d.Sel, g)
					applied = true
					break
				}
			}
		}

		// Swaps (changing a feature): a shrink paired with a grow.
		// Deltas add because the two moves touch distinct types.
		if !applied {
		swaps:
			for _, s := range shrinkMoves(d) {
				sDelta := typeDelta(dfss, i, s.t, d.Sel[s.t], s.depth, opts.Threshold)
				sPrev, sHad := d.Sel[s.t]
				applyMove(d.Sel, s) // grow moves are relative to the shrunk state
				for _, g := range growMoves(d) {
					if g.t == s.t {
						continue // same-type grow is just the inverse
					}
					if sDelta+typeDelta(dfss, i, g.t, d.Sel[g.t], g.depth, opts.Threshold) > 0 {
						applyMove(d.Sel, g)
						applied = true
						break swaps
					}
				}
				restore(d.Sel, s.t, sPrev, sHad)
			}
		}

		if !applied {
			return changed
		}
		changed = true
	}
}

func restore(sel Selection, t feature.Type, prev int, had bool) {
	if had {
		sel[t] = prev
	} else {
		delete(sel, t)
	}
}
