package core

import (
	"math/rand"
	"testing"
)

func TestAnnealProducesValidDFSs(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for iter := 0; iter < 30; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		dfss := Anneal(stats, AnnealOptions{
			Options: Options{SizeBound: 5, Threshold: 0.1},
			Seed:    int64(iter),
			Steps:   400,
		})
		for _, d := range dfss {
			if err := d.Validate(5); err != nil {
				t.Fatalf("anneal produced invalid DFS: %v", err)
			}
		}
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	stats := randomStatsSet(r, 3, 4, 3)
	opts := AnnealOptions{Options: Options{SizeBound: 5, Threshold: 0.1}, Seed: 7, Steps: 300}
	a := TotalDoD(Anneal(stats, opts), 0.1)
	b := TotalDoD(Anneal(stats, opts), 0.1)
	if a != b {
		t.Fatalf("same seed, different DoD: %d vs %d", a, b)
	}
}

func TestAnnealBeatsOrMatchesTopK(t *testing.T) {
	// Annealing starts at top-fill and keeps the best state visited,
	// so it can never end below the starting DoD.
	r := rand.New(rand.NewSource(63))
	for iter := 0; iter < 40; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		opts := Options{SizeBound: 4, Threshold: 0.1}
		top := TotalDoD(TopK(stats, opts), opts.Threshold)
		ann := TotalDoD(Anneal(stats, AnnealOptions{Options: opts, Seed: int64(iter), Steps: 500}), opts.Threshold)
		if ann < top {
			t.Fatalf("iter %d: anneal %d < top-k %d", iter, ann, top)
		}
	}
}

func TestAnnealNearMultiSwap(t *testing.T) {
	// With enough steps annealing should land in the same ballpark as
	// multi-swap (within 25% on these small instances).
	r := rand.New(rand.NewSource(64))
	short := 0
	for iter := 0; iter < 25; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		opts := Options{SizeBound: 4, Threshold: 0.1}
		ms := TotalDoD(MultiSwap(stats, opts), opts.Threshold)
		ann := TotalDoD(Anneal(stats, AnnealOptions{Options: opts, Seed: int64(iter), Steps: 3000}), opts.Threshold)
		if float64(ann) < 0.75*float64(ms) {
			short++
		}
	}
	if short > 3 {
		t.Fatalf("anneal fell far short of multi-swap on %d/25 instances", short)
	}
}

func TestAnnealDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	stats := randomStatsSet(r, 2, 3, 2)
	dfss := Anneal(stats, AnnealOptions{}) // all defaults
	for _, d := range dfss {
		if err := d.Validate(DefaultSizeBound); err != nil {
			t.Fatalf("default anneal invalid: %v", err)
		}
	}
}

func BenchmarkAnneal(b *testing.B) {
	r := rand.New(rand.NewSource(66))
	stats := randomStatsSet(r, 5, 5, 4)
	opts := AnnealOptions{Options: Options{SizeBound: 8, Threshold: 0.1}, Seed: 1, Steps: 2000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Anneal(stats, opts)
	}
}
