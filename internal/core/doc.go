// Package core implements XSACT's primary contribution: construction
// of Differentiation Feature Sets (DFSs) for a group of structured
// search results (Liu, Sun, Chen, "Structured Search Result
// Differentiation", PVLDB 2(1), 2009; demonstrated as XSACT, VLDB
// 2010).
//
// Given per-result feature statistics (package feature), a size bound
// L and a differentiation threshold x, the generator picks for each
// result a valid feature selection of at most L features so that the
// total Degree of Differentiation (DoD) across all result pairs is
// maximized. Exact maximization is NP-hard; the package provides the
// paper's two local-optimality algorithms (single-swap and multi-swap)
// plus an exhaustive oracle and frequency-only baselines for
// evaluation.
package core
