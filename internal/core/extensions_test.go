package core

import (
	"math/rand"
	"testing"

	"repro/internal/feature"
)

func TestGreedyProducesValidDFSs(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	opts := Options{SizeBound: 5, Threshold: 0.1}
	for iter := 0; iter < 80; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		for _, d := range GreedyGlobal(stats, opts) {
			if err := d.Validate(opts.SizeBound); err != nil {
				t.Fatalf("greedy produced invalid DFS: %v", err)
			}
		}
	}
}

func TestGreedyFillsBudgets(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	stats := randomStatsSet(r, 3, 5, 4)
	opts := Options{SizeBound: 4, Threshold: 0.1}
	for _, d := range GreedyGlobal(stats, opts) {
		avail := 0
		for _, tp := range d.Stats.AllTypes() {
			avail += len(d.Stats.ValuesOf(tp))
		}
		want := opts.SizeBound
		if avail < want {
			want = avail
		}
		if d.Size() != want {
			t.Fatalf("greedy left budget unused: size %d, want %d", d.Size(), want)
		}
	}
}

func TestGreedyCoordination(t *testing.T) {
	// Two results sharing a differentiating type that raw frequency
	// would never pick: greedy must discover it through gain once the
	// first side selects something.
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	con := feature.Type{Entity: "review", Attribute: "con"}
	a := feature.NewStatsFromCounts("a", map[string]int{"review": 10},
		map[feature.Feature]int{
			{Type: pro, Value: "same"}:   10, // identical in both: no diff
			{Type: con, Value: "pricey"}: 9,  // 90% here vs 10% there
		})
	b := feature.NewStatsFromCounts("b", map[string]int{"review": 10},
		map[feature.Feature]int{
			{Type: pro, Value: "same"}:   10,
			{Type: con, Value: "pricey"}: 1,
		})
	dfss := GreedyGlobal([]*feature.Stats{a, b}, Options{SizeBound: 2, Threshold: 0.1})
	if got := TotalDoD(dfss, 0.1); got != 1 {
		t.Fatalf("greedy DoD = %d, want 1 (con differentiates)", got)
	}
	if _, ok := dfss[0].Sel[con]; !ok {
		t.Fatal("greedy did not select the differentiating type")
	}
}

func TestGreedyBetweenTopKAndMultiSwap(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	opts := Options{SizeBound: 4, Threshold: 0.1}
	greedyWins, multiWins := 0, 0
	for iter := 0; iter < 100; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		top := TotalDoD(TopK(stats, opts), opts.Threshold)
		gr := TotalDoD(GreedyGlobal(stats, opts), opts.Threshold)
		ms := TotalDoD(MultiSwap(stats, opts), opts.Threshold)
		if gr >= top {
			greedyWins++
		}
		if ms >= gr {
			multiWins++
		}
	}
	// Greedy is coordinated, so it should beat-or-match the
	// independent top-k on the vast majority of instances, and
	// multi-swap should beat-or-match greedy similarly.
	if greedyWins < 90 {
		t.Fatalf("greedy >= top-k on only %d/100 instances", greedyWins)
	}
	if multiWins < 85 {
		t.Fatalf("multi-swap >= greedy on only %d/100 instances", multiWins)
	}
}

func TestWeightedDoDUniformMatchesTotalDoD(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for iter := 0; iter < 50; iter++ {
		stats := randomStatsSet(r, 3, 3, 3)
		dfss := MultiSwap(stats, Options{SizeBound: 4, Threshold: 0.1})
		plain := float64(TotalDoD(dfss, 0.1))
		weighted := WeightedDoD(dfss, 0.1, UniformInterest)
		if plain != weighted {
			t.Fatalf("uniform weighted DoD %f != plain %f", weighted, plain)
		}
		if nilW := WeightedDoD(dfss, 0.1, nil); nilW != plain {
			t.Fatalf("nil interest DoD %f != plain %f", nilW, plain)
		}
	}
}

func TestContrastInterestRange(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	stats := randomStatsSet(r, 4, 4, 3)
	interest := ContrastInterest(stats)
	for _, s := range stats {
		for _, tp := range s.AllTypes() {
			w := interest(tp)
			if w < 1 || w > 2 {
				t.Fatalf("contrast weight %f for %s outside [1,2]", w, tp)
			}
		}
	}
	if w := interest(feature.Type{Entity: "zz", Attribute: "zz"}); w != 1 {
		t.Fatalf("unknown type weight = %f, want 1", w)
	}
}

func TestContrastInterestPrefersSpreadTypes(t *testing.T) {
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	con := feature.Type{Entity: "review", Attribute: "con"}
	a := feature.NewStatsFromCounts("a", map[string]int{"review": 10},
		map[feature.Feature]int{
			{Type: pro, Value: "v"}: 9, // 90% vs 80%: small spread
			{Type: con, Value: "w"}: 9, // 90% vs 10%: large spread
		})
	b := feature.NewStatsFromCounts("b", map[string]int{"review": 10},
		map[feature.Feature]int{
			{Type: pro, Value: "v"}: 8,
			{Type: con, Value: "w"}: 1,
		})
	interest := ContrastInterest([]*feature.Stats{a, b})
	if interest(con) <= interest(pro) {
		t.Fatalf("contrast(%s)=%f should exceed contrast(%s)=%f",
			con, interest(con), pro, interest(pro))
	}
}

func TestWeightedGreedyUniformEqualsGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	for iter := 0; iter < 50; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		opts := Options{SizeBound: 4, Threshold: 0.1}
		a := GreedyGlobal(stats, opts)
		b := WeightedGreedy(stats, opts, UniformInterest)
		c := WeightedGreedy(stats, opts, nil)
		for i := range a {
			if !selectionsEqual(a[i].Sel, b[i].Sel) || !selectionsEqual(a[i].Sel, c[i].Sel) {
				t.Fatalf("iter %d: uniform weighted greedy diverged from greedy", iter)
			}
		}
	}
}

func selectionsEqual(a, b Selection) bool {
	if len(a) != len(b) {
		return false
	}
	for t, d := range a {
		if b[t] != d {
			return false
		}
	}
	return true
}

func TestWeightedGreedySteersTowardInterest(t *testing.T) {
	// Two candidate differentiating types in *different* entities
	// (validity couples types within one entity, so a flip is only
	// observable across entities); budget 1 each. Weighting the less
	// frequent type higher must flip the greedy's choice.
	ta := feature.Type{Entity: "e1", Attribute: "aaa"}
	tb := feature.Type{Entity: "e2", Attribute: "bbb"}
	mk := func(label string, ca, cb int) *feature.Stats {
		return feature.NewStatsFromCounts(label,
			map[string]int{"e1": 10, "e2": 10},
			map[feature.Feature]int{
				{Type: ta, Value: "x"}: ca,
				{Type: tb, Value: "y"}: cb,
			})
	}
	// Both types differentiate (9/8 vs 1); ta is more frequent.
	stats := []*feature.Stats{mk("a", 9, 8), mk("b", 1, 1)}
	opts := Options{SizeBound: 1, Threshold: 0.1}

	plain := WeightedGreedy(stats, opts, UniformInterest)
	if _, ok := plain[0].Sel[ta]; !ok {
		t.Fatalf("uniform greedy should pick the more frequent type; got %v", plain[0].Sel)
	}
	boosted := WeightedGreedy(stats, opts, func(t feature.Type) float64 {
		if t == tb {
			return 5
		}
		return 1
	})
	if _, ok := boosted[0].Sel[tb]; !ok {
		t.Fatalf("interest weighting should flip the choice to %s; got %v", tb, boosted[0].Sel)
	}
	if _, ok := boosted[1].Sel[tb]; !ok {
		t.Fatalf("coordination should follow the boosted type; got %v", boosted[1].Sel)
	}
}

func TestGenerateGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	stats := randomStatsSet(r, 2, 3, 2)
	if Generate(AlgGreedy, stats, Options{SizeBound: 3}) == nil {
		t.Fatal("Generate(greedy) returned nil")
	}
	if len(Algorithms()) != 5 {
		t.Fatalf("Algorithms() = %v", Algorithms())
	}
}

func BenchmarkGreedyGlobal(b *testing.B) {
	r := rand.New(rand.NewSource(28))
	stats := randomStatsSet(r, 5, 5, 4)
	opts := Options{SizeBound: 8, Threshold: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GreedyGlobal(stats, opts)
	}
}
