package core

import (
	"math"
	"math/rand"

	"repro/internal/feature"
)

// AnnealOptions configures simulated annealing.
type AnnealOptions struct {
	Options
	// Seed drives the random walk; equal seeds give equal outputs.
	Seed int64
	// Steps is the number of proposal steps. Zero means 2000.
	Steps int
	// StartTemp is the initial temperature in DoD units. Zero means 2.
	StartTemp float64
}

// Anneal explores the joint DFS space with simulated annealing —
// a third entry in the paper's "better algorithms" future-work
// direction, able (unlike both swap methods) to accept temporarily
// worse states and cross DoD plateaus. Proposals are single grow or
// shrink moves on a random result (shrinks being acceptable uphill or
// downhill is what lets it escape); temperature decays
// geometrically to zero so the walk ends in hill-climbing, and the
// best state ever visited is returned. Given a large step budget it
// can climb past the swap methods' local optima
// (BenchmarkAblationAnneal measures ~+35% DoD on one benchmark query
// at ~20x the cost), which makes it an upper-bound probe on how much
// the cheap local searches leave behind — the gap the paper's
// NP-hardness result predicts must exist.
func Anneal(stats []*feature.Stats, opts AnnealOptions) []*DFS {
	o := opts.Options.normalized()
	steps := opts.Steps
	if steps <= 0 {
		steps = 2000
	}
	temp := opts.StartTemp
	if temp <= 0 {
		temp = 2
	}
	cool := math.Pow(0.01/temp, 1/float64(steps)) // reach 0.01 at the end
	rng := rand.New(rand.NewSource(opts.Seed))

	dfss := newDFSs(stats)
	for _, d := range dfss {
		pad(d, o.SizeBound)
	}
	cur := TotalDoD(dfss, o.Threshold)
	best := cur
	bestSel := snapshot(dfss)

	for step := 0; step < steps; step++ {
		i := rng.Intn(len(dfss))
		d := dfss[i]
		undo, delta := proposeMove(dfss, i, d, o, rng)
		if undo == nil {
			continue
		}
		accept := delta >= 0
		if !accept {
			accept = rng.Float64() < math.Exp(float64(delta)/temp)
		}
		if !accept {
			undo()
		} else {
			cur += delta
			if cur > best {
				best = cur
				bestSel = snapshot(dfss)
			}
		}
		temp *= cool
	}
	for i := range dfss {
		dfss[i].Sel = bestSel[i]
	}
	return dfss
}

// proposeMove mutates result i with a random valid move and returns an
// undo closure plus the DoD delta, or (nil, 0) when no move applies.
func proposeMove(dfss []*DFS, i int, d *DFS, o Options, rng *rand.Rand) (func(), int) {
	grows := growMoves(d)
	if d.Sel.Size() >= o.SizeBound {
		grows = nil
	}
	shrinks := shrinkMoves(d)
	total := len(grows) + len(shrinks)
	if total == 0 {
		return nil, 0
	}
	pick := rng.Intn(total)
	var m move
	if pick < len(grows) {
		m = grows[pick]
	} else {
		m = shrinks[pick-len(grows)]
	}
	prev, had := d.Sel[m.t]
	delta := typeDelta(dfss, i, m.t, prev, m.depth, o.Threshold)
	applyMove(d.Sel, m)
	return func() { restore(d.Sel, m.t, prev, had) }, delta
}

func snapshot(dfss []*DFS) []Selection {
	out := make([]Selection, len(dfss))
	for i, d := range dfss {
		out[i] = d.Sel.Clone()
	}
	return out
}
