package core

import (
	"math/rand"
	"testing"

	"repro/internal/feature"
)

// mkStats builds synthetic statistics: one "review" entity with the
// given (attribute, value) -> count map and group size.
func mkStats(label string, group int, counts map[[2]string]int) *feature.Stats {
	fc := make(map[feature.Feature]int, len(counts))
	for k, c := range counts {
		fc[feature.Feature{
			Type:  feature.Type{Entity: "review", Attribute: k[0]},
			Value: k[1],
		}] = c
	}
	return feature.NewStatsFromCounts(label, map[string]int{"review": group}, fc)
}

func TestRelDiffer(t *testing.T) {
	cases := []struct {
		a, b, x float64
		want    bool
	}{
		{0.5, 0.5, 0.1, false},
		{0.5, 0.56, 0.1, true},  // 12% of smaller
		{0.5, 0.54, 0.1, false}, // 8%
		{0, 0.3, 0.1, true},     // zero vs positive
		{0, 0, 0.1, false},
		{1.0, 1.2, 0.1, true},
		{0.9, 0.99, 0.1, false}, // exactly 10% is not "more than"
	}
	for _, c := range cases {
		if got := relDiffer(c.a, c.b, c.x); got != c.want {
			t.Errorf("relDiffer(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
		if got := relDiffer(c.b, c.a, c.x); got != c.want {
			t.Errorf("relDiffer not symmetric for (%v,%v)", c.a, c.b)
		}
	}
}

func TestSelectionSizeAndClone(t *testing.T) {
	tA := feature.Type{Entity: "e", Attribute: "a"}
	tB := feature.Type{Entity: "e", Attribute: "b"}
	s := Selection{tA: 2, tB: 1}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	c := s.Clone()
	c[tA] = 9
	if s[tA] != 2 {
		t.Fatal("Clone aliases original")
	}
}

func TestValidityPrefixRule(t *testing.T) {
	// pro total 10, con total 4: significance order [pro, con].
	s := mkStats("r", 10, map[[2]string]int{
		{"pro", "compact"}: 6, {"pro", "bright"}: 4,
		{"con", "pricey"}: 4,
	})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	con := feature.Type{Entity: "review", Attribute: "con"}

	valid := &DFS{Stats: s, Sel: Selection{pro: 1}}
	if err := valid.Validate(5); err != nil {
		t.Fatalf("prefix selection rejected: %v", err)
	}
	both := &DFS{Stats: s, Sel: Selection{pro: 2, con: 1}}
	if err := both.Validate(5); err != nil {
		t.Fatalf("full selection rejected: %v", err)
	}
	skip := &DFS{Stats: s, Sel: Selection{con: 1}} // skips pro
	if err := skip.Validate(5); err == nil {
		t.Fatal("out-of-order selection accepted")
	}
}

func TestValidityDepthAndSize(t *testing.T) {
	s := mkStats("r", 10, map[[2]string]int{{"pro", "compact"}: 6, {"pro", "bright"}: 4})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	tooDeep := &DFS{Stats: s, Sel: Selection{pro: 3}}
	if err := tooDeep.Validate(9); err == nil {
		t.Fatal("depth beyond values accepted")
	}
	zeroDepth := &DFS{Stats: s, Sel: Selection{pro: 0}}
	if err := zeroDepth.Validate(9); err == nil {
		t.Fatal("zero depth accepted")
	}
	overBudget := &DFS{Stats: s, Sel: Selection{pro: 2}}
	if err := overBudget.Validate(1); err == nil {
		t.Fatal("size over bound accepted")
	}
	missing := &DFS{Stats: s, Sel: Selection{{Entity: "x", Attribute: "y"}: 1}}
	if err := missing.Validate(9); err == nil {
		t.Fatal("absent type accepted")
	}
}

func TestPairDoDSharedTypesOnly(t *testing.T) {
	a := mkStats("a", 10, map[[2]string]int{{"pro", "compact"}: 9, {"con", "pricey"}: 5})
	b := mkStats("b", 10, map[[2]string]int{{"pro", "compact"}: 3, {"use", "auto"}: 5})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	con := feature.Type{Entity: "review", Attribute: "con"}
	use := feature.Type{Entity: "review", Attribute: "use"}

	da := &DFS{Stats: a, Sel: Selection{pro: 1, con: 1}}
	db := &DFS{Stats: b, Sel: Selection{pro: 1, use: 1}}
	// Only pro is shared; 0.9 vs 0.3 differs.
	if got := PairDoD(da, db, 0.1); got != 1 {
		t.Fatalf("PairDoD = %d, want 1", got)
	}
	if got := PairDoD(db, da, 0.1); got != 1 {
		t.Fatal("PairDoD not symmetric")
	}
}

func TestPairDoDAbsentValueDifferentiates(t *testing.T) {
	// Both select "pro", but a's top value does not occur in b at all:
	// rel 0 vs positive differentiates.
	a := mkStats("a", 10, map[[2]string]int{{"pro", "compact"}: 9})
	b := mkStats("b", 10, map[[2]string]int{{"pro", "bright"}: 9})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	da := &DFS{Stats: a, Sel: Selection{pro: 1}}
	db := &DFS{Stats: b, Sel: Selection{pro: 1}}
	if got := PairDoD(da, db, 0.1); got != 1 {
		t.Fatalf("PairDoD = %d, want 1", got)
	}
}

func TestPairDoDEqualFrequenciesDoNotDifferentiate(t *testing.T) {
	a := mkStats("a", 10, map[[2]string]int{{"pro", "compact"}: 8})
	b := mkStats("b", 10, map[[2]string]int{{"pro", "compact"}: 8})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	da := &DFS{Stats: a, Sel: Selection{pro: 1}}
	db := &DFS{Stats: b, Sel: Selection{pro: 1}}
	if got := PairDoD(da, db, 0.1); got != 0 {
		t.Fatalf("PairDoD = %d, want 0", got)
	}
}

func TestDoDMonotoneUnderGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		stats := randomStatsSet(r, 3, 3, 3)
		opts := Options{SizeBound: 6, Threshold: 0.1}
		dfss := Random(stats, Options{SizeBound: 3, Threshold: 0.1}, r)
		before := TotalDoD(dfss, opts.Threshold)
		// Grow one DFS by one random move.
		i := r.Intn(len(dfss))
		moves := growMoves(dfss[i])
		if len(moves) == 0 {
			continue
		}
		applyMove(dfss[i].Sel, moves[r.Intn(len(moves))])
		after := TotalDoD(dfss, opts.Threshold)
		if after < before {
			t.Fatalf("DoD decreased after growth: %d -> %d", before, after)
		}
	}
}

// randomStatsSet builds n random results over a shared pool of
// attributes/values so types overlap across results.
func randomStatsSet(r *rand.Rand, n, nAttrs, nVals int) []*feature.Stats {
	attrs := []string{"pro", "con", "use", "size", "color"}[:nAttrs]
	vals := []string{"v1", "v2", "v3", "v4"}[:nVals]
	out := make([]*feature.Stats, n)
	for i := range out {
		counts := make(map[[2]string]int)
		for _, a := range attrs {
			for _, v := range vals {
				if r.Intn(3) > 0 {
					counts[[2]string{a, v}] = r.Intn(10)
				}
			}
		}
		out[i] = mkStats("r"+string(rune('A'+i)), 10, counts)
	}
	return out
}

func TestAlgorithmsProduceValidDFSs(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	opts := Options{SizeBound: 5, Threshold: 0.1}
	for iter := 0; iter < 100; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		for _, alg := range []Algorithm{AlgSingleSwap, AlgMultiSwap, AlgTopK} {
			dfss := Generate(alg, stats, opts)
			for _, d := range dfss {
				if err := d.Validate(opts.SizeBound); err != nil {
					t.Fatalf("%s produced invalid DFS: %v", alg, err)
				}
			}
		}
		rnd := Random(stats, opts, r)
		for _, d := range rnd {
			if err := d.Validate(opts.SizeBound); err != nil {
				t.Fatalf("Random produced invalid DFS: %v", err)
			}
		}
	}
}

func TestMultiSwapAtLeastSingleSwap(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	opts := Options{SizeBound: 4, Threshold: 0.1}
	worse := 0
	for iter := 0; iter < 150; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		ss := TotalDoD(SingleSwap(stats, opts), opts.Threshold)
		ms := TotalDoD(MultiSwap(stats, opts), opts.Threshold)
		if ms < ss {
			worse++
			t.Logf("iter %d: multi %d < single %d", iter, ms, ss)
		}
	}
	// Both are local optima of different neighbourhoods; multi-swap's
	// neighbourhood strictly contains single-swap's per-result moves,
	// but coordinate ascent paths differ, so allow rare inversions —
	// the paper's Figure 4(a) shows "generally outperforms".
	if worse > 7 { // >5% of runs
		t.Fatalf("multi-swap worse than single-swap in %d/150 runs", worse)
	}
}

func TestAlgorithmsBeatOrMatchTopK(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	opts := Options{SizeBound: 4, Threshold: 0.1}
	for iter := 0; iter < 100; iter++ {
		stats := randomStatsSet(r, 3, 4, 3)
		top := TotalDoD(TopK(stats, opts), opts.Threshold)
		ss := TotalDoD(SingleSwap(stats, opts), opts.Threshold)
		ms := TotalDoD(MultiSwap(stats, opts), opts.Threshold)
		if ss < top || ms < top {
			// Both start from the TopK selection and only accept
			// improving moves, so they can never end lower.
			t.Fatalf("iter %d: topk=%d single=%d multi=%d", iter, top, ss, ms)
		}
	}
}

func TestMultiSwapMatchesExhaustiveOnTinyInstances(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	opts := Options{SizeBound: 3, Threshold: 0.1}
	mismatches := 0
	for iter := 0; iter < 60; iter++ {
		stats := randomStatsSet(r, 2, 2, 2)
		ex := Exhaustive(stats, opts)
		if ex == nil {
			t.Fatal("exhaustive refused tiny instance")
		}
		exDoD := TotalDoD(ex, opts.Threshold)
		msDoD := TotalDoD(MultiSwap(stats, opts), opts.Threshold)
		if msDoD > exDoD {
			t.Fatalf("multi-swap %d beat exhaustive %d — oracle broken", msDoD, exDoD)
		}
		if msDoD < exDoD {
			mismatches++
		}
	}
	// With only two results, each block step optimizes against the
	// other exactly, so multi-swap should reach the global optimum in
	// nearly every instance (ties/plateaus can strand it rarely).
	if mismatches > 3 {
		t.Fatalf("multi-swap missed the exhaustive optimum in %d/60 tiny runs", mismatches)
	}
}

func TestSingleSwapOptimalityAtFixpoint(t *testing.T) {
	// At termination, no single grow and no shrink+grow swap may
	// increase total DoD — the definition of single-swap optimality.
	r := rand.New(rand.NewSource(16))
	opts := Options{SizeBound: 4, Threshold: 0.1}
	for iter := 0; iter < 40; iter++ {
		stats := randomStatsSet(r, 3, 3, 3)
		dfss := SingleSwap(stats, opts)
		base := TotalDoD(dfss, opts.Threshold)
		for i, d := range dfss {
			if d.Sel.Size() < opts.SizeBound {
				for _, g := range growMoves(d) {
					prev, had := d.Sel[g.t]
					applyMove(d.Sel, g)
					if TotalDoD(dfss, opts.Threshold) > base {
						t.Fatalf("iter %d: grow move on result %d improves DoD at fixpoint", iter, i)
					}
					restore(d.Sel, g.t, prev, had)
				}
			}
			for _, s := range shrinkMoves(d) {
				sPrev, sHad := d.Sel[s.t]
				applyMove(d.Sel, s)
				for _, g := range growMoves(d) {
					if g.t == s.t {
						continue
					}
					gPrev, gHad := d.Sel[g.t]
					applyMove(d.Sel, g)
					if d.Sel.Size() <= opts.SizeBound && TotalDoD(dfss, opts.Threshold) > base {
						t.Fatalf("iter %d: swap move on result %d improves DoD at fixpoint", iter, i)
					}
					restore(d.Sel, g.t, gPrev, gHad)
				}
				restore(d.Sel, s.t, sPrev, sHad)
			}
		}
	}
}

func TestFeaturesEnumeration(t *testing.T) {
	s := mkStats("r", 10, map[[2]string]int{
		{"pro", "compact"}: 6, {"pro", "bright"}: 4, {"con", "pricey"}: 2,
	})
	pro := feature.Type{Entity: "review", Attribute: "pro"}
	con := feature.Type{Entity: "review", Attribute: "con"}
	d := &DFS{Stats: s, Sel: Selection{pro: 2, con: 1}}
	fs := d.Features()
	if len(fs) != 3 {
		t.Fatalf("Features = %v", fs)
	}
	if fs[0].Value != "compact" || fs[1].Value != "bright" || fs[2].Value != "pricey" {
		t.Fatalf("feature order = %v", fs)
	}
	if d.Size() != 3 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestEnumerateSelectionsValidity(t *testing.T) {
	s := mkStats("r", 10, map[[2]string]int{
		{"pro", "compact"}: 6, {"pro", "bright"}: 4, {"con", "pricey"}: 2,
	})
	sels := enumerateSelections(s, 3)
	seen := make(map[string]bool)
	for _, sel := range sels {
		d := &DFS{Stats: s, Sel: sel}
		if err := d.Validate(3); err != nil {
			t.Fatalf("enumerated invalid selection: %v", err)
		}
		key := ""
		for _, f := range d.Features() {
			key += f.String() + ";"
		}
		if seen[key] {
			t.Fatalf("duplicate selection enumerated: %s", key)
		}
		seen[key] = true
	}
	// pro depths 0..2, con 0..1 with prefix rule and budget 3:
	// {}, {p1}, {p2}, {p1,c1}, {p2,c1} = 5.
	if len(sels) != 5 {
		t.Fatalf("enumerated %d selections, want 5", len(sels))
	}
}

func TestGenerateUnknownAlgorithm(t *testing.T) {
	if Generate(Algorithm("nope"), nil, Options{}) != nil {
		t.Fatal("unknown algorithm should return nil")
	}
}

func TestPaddingFillsBudget(t *testing.T) {
	s := mkStats("r", 10, map[[2]string]int{
		{"pro", "compact"}: 6, {"pro", "bright"}: 4, {"con", "pricey"}: 2,
	})
	d := &DFS{Stats: s, Sel: make(Selection)}
	pad(d, 3)
	if d.Size() != 3 {
		t.Fatalf("pad filled to %d, want 3", d.Size())
	}
	if err := d.Validate(3); err != nil {
		t.Fatalf("padded DFS invalid: %v", err)
	}
	// Budget larger than the result: all features selected, no loop.
	d2 := &DFS{Stats: s, Sel: make(Selection)}
	pad(d2, 100)
	if d2.Size() != 3 {
		t.Fatalf("over-budget pad = %d features", d2.Size())
	}
}

func TestDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	stats := randomStatsSet(r, 3, 4, 3)
	opts := Options{SizeBound: 5, Threshold: 0.1}
	for _, alg := range []Algorithm{AlgSingleSwap, AlgMultiSwap, AlgTopK} {
		a := Generate(alg, stats, opts)
		b := Generate(alg, stats, opts)
		if TotalDoD(a, opts.Threshold) != TotalDoD(b, opts.Threshold) {
			t.Fatalf("%s not deterministic", alg)
		}
		for i := range a {
			if len(a[i].Sel) != len(b[i].Sel) {
				t.Fatalf("%s selections differ across runs", alg)
			}
			for tp, depth := range a[i].Sel {
				if b[i].Sel[tp] != depth {
					t.Fatalf("%s selections differ for %s", alg, tp)
				}
			}
		}
	}
}

func BenchmarkSingleSwap(b *testing.B) {
	r := rand.New(rand.NewSource(18))
	stats := randomStatsSet(r, 5, 5, 4)
	opts := Options{SizeBound: 8, Threshold: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SingleSwap(stats, opts)
	}
}

func BenchmarkMultiSwap(b *testing.B) {
	r := rand.New(rand.NewSource(18))
	stats := randomStatsSet(r, 5, 5, 4)
	opts := Options{SizeBound: 8, Threshold: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MultiSwap(stats, opts)
	}
}
