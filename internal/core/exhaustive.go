package core

import "repro/internal/feature"

// Exhaustive computes globally optimal DFSs by enumerating every
// combination of valid selections across all results and maximizing
// total DoD. Its cost is exponential; it exists as a ground-truth
// oracle for tests and small ablation studies. Inputs beyond
// MaxExhaustiveSelections valid selections per result are rejected by
// returning nil (callers must keep instances tiny).
func Exhaustive(stats []*feature.Stats, opts Options) []*DFS {
	opts = opts.normalized()
	all := make([][]Selection, len(stats))
	for i, s := range stats {
		all[i] = enumerateSelections(s, opts.SizeBound)
		if len(all[i]) == 0 || len(all[i]) > MaxExhaustiveSelections {
			return nil
		}
	}
	dfss := newDFSs(stats)
	best := make([]Selection, len(stats))
	bestDoD := -1

	var rec func(i int)
	rec = func(i int) {
		if i == len(stats) {
			if d := TotalDoD(dfss, opts.Threshold); d > bestDoD {
				bestDoD = d
				for k, dd := range dfss {
					best[k] = dd.Sel.Clone()
				}
			}
			return
		}
		for _, sel := range all[i] {
			dfss[i].Sel = sel
			rec(i + 1)
		}
	}
	rec(0)

	for i := range dfss {
		dfss[i].Sel = best[i]
	}
	return dfss
}

// MaxExhaustiveSelections bounds the per-result search space of
// Exhaustive.
const MaxExhaustiveSelections = 20000

// enumerateSelections lists every valid selection of size <= bound for
// the given statistics, including the empty one.
func enumerateSelections(s *feature.Stats, bound int) []Selection {
	entities := s.Entities()
	var out []Selection
	cur := make(Selection)

	var perEntity func(ei int, budget int)
	perEntity = func(ei, budget int) {
		if ei == len(entities) {
			out = append(out, cur.Clone())
			return
		}
		order := s.TypesOf(entities[ei])
		// Choose a prefix length k and depths for each selected type.
		var prefix func(k, budget int)
		prefix = func(k, budget int) {
			// Option: stop the prefix here, move to next entity.
			perEntity(ei+1, budget)
			if k == len(order) || budget == 0 {
				return
			}
			t := order[k]
			nvals := len(s.ValuesOf(t))
			for depth := 1; depth <= nvals && depth <= budget; depth++ {
				cur[t] = depth
				prefix(k+1, budget-depth)
			}
			delete(cur, t)
		}
		prefix(0, budget)
	}
	perEntity(0, bound)
	return out
}
