package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/xseek"
)

func movieStats(t testing.TB, query string) []*feature.Stats {
	t.Helper()
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 60})
	eng := xseek.New(root)
	results, err := eng.Search(query)
	if err != nil {
		t.Fatalf("search %q: %v", query, err)
	}
	stats := make([]*feature.Stats, len(results))
	for i, r := range results {
		stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
	}
	return stats
}

// TestGenerateParallelMatchesSerial demands bit-identical selections
// from the pooled and the serial generator for every algorithm — the
// ascent is sequential in both, and padding is per-result
// deterministic, so parallelism must not change the output.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	stats := movieStats(t, "horror vampire")
	if len(stats) < 2 {
		t.Fatalf("need >= 2 results, got %d", len(stats))
	}
	opts := Options{SizeBound: 8, Threshold: 0.10, Pad: true}
	for _, alg := range Algorithms() {
		serial := Generate(alg, stats, opts)
		par := GenerateParallel(alg, stats, opts)
		if len(serial) != len(par) {
			t.Fatalf("%s: %d DFSs vs %d", alg, len(par), len(serial))
		}
		for i := range serial {
			if len(serial[i].Sel) != len(par[i].Sel) {
				t.Fatalf("%s: DFS %d selects %d types, want %d", alg, i, len(par[i].Sel), len(serial[i].Sel))
			}
			for typ, depth := range serial[i].Sel {
				if par[i].Sel[typ] != depth {
					t.Fatalf("%s: DFS %d type %s depth = %d, want %d", alg, i, typ, par[i].Sel[typ], depth)
				}
			}
		}
		if a, b := TotalDoD(serial, opts.Threshold), TotalDoD(par, opts.Threshold); a != b {
			t.Fatalf("%s: DoD %d vs %d", alg, b, a)
		}
	}
}

// TestGenerateParallelUnknownAlgorithm mirrors Generate's nil return.
func TestGenerateParallelUnknownAlgorithm(t *testing.T) {
	stats := movieStats(t, "horror vampire")
	if GenerateParallel(Algorithm("bogus"), stats, Options{}) != nil {
		t.Fatal("unknown algorithm should return nil")
	}
}

// TestForEachParallelCoversAllIndices exercises the pool helper's
// chunking across worker counts, including the serial degenerate case.
func TestForEachParallelCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hits := make([]int, 37)
		ForEachParallel(len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}
