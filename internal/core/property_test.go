package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropPairDoDSymmetric: DoD(a,b) == DoD(b,a) on random valid DFSs.
func TestPropPairDoDSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		stats := randomStatsSet(r, 2, 4, 3)
		dfss := Random(stats, Options{SizeBound: 5, Threshold: 0.1}, r)
		a, b := dfss[0], dfss[1]
		if PairDoD(a, b, 0.1) != PairDoD(b, a, 0.1) {
			t.Fatalf("PairDoD asymmetric at iteration %d", iter)
		}
	}
}

// TestPropDoDBoundedBySharedTypes: DoD(a,b) can never exceed the
// number of types selected in both DFSs.
func TestPropDoDBoundedBySharedTypes(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for iter := 0; iter < 300; iter++ {
		stats := randomStatsSet(r, 2, 4, 3)
		dfss := Random(stats, Options{SizeBound: 6, Threshold: 0.1}, r)
		shared := 0
		for tp := range dfss[0].Sel {
			if _, ok := dfss[1].Sel[tp]; ok {
				shared++
			}
		}
		if got := PairDoD(dfss[0], dfss[1], 0.1); got > shared {
			t.Fatalf("DoD %d exceeds shared types %d", got, shared)
		}
	}
}

// TestPropThresholdMonotone: raising x can only remove differentiable
// witnesses, so pairwise DoD is non-increasing in x for fixed DFSs.
func TestPropThresholdMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	thresholds := []float64{0.01, 0.05, 0.1, 0.3, 0.7, 1.5, 5}
	for iter := 0; iter < 200; iter++ {
		stats := randomStatsSet(r, 2, 4, 3)
		dfss := Random(stats, Options{SizeBound: 5, Threshold: 0.1}, r)
		prev := -1
		for i := len(thresholds) - 1; i >= 0; i-- {
			dod := PairDoD(dfss[0], dfss[1], thresholds[i])
			if prev >= 0 && dod < prev {
				t.Fatalf("DoD rose from %d to %d as x tightened", prev, dod)
			}
			prev = dod
		}
	}
}

// TestPropRelDifferQuick: quick-checked algebraic properties of the
// threshold predicate.
func TestPropRelDifferQuick(t *testing.T) {
	symmetric := func(a, b float64, xRaw uint8) bool {
		x := float64(xRaw%100) / 100
		a, b = abs(a), abs(b)
		return relDiffer(a, b, x) == relDiffer(b, a, x)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	irreflexive := func(a float64, xRaw uint8) bool {
		x := float64(xRaw%100) / 100
		return !relDiffer(abs(a), abs(a), x)
	}
	if err := quick.Check(irreflexive, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// TestPropGrowShrinkInverse: applying a grow move and then shrinking
// it back restores the selection.
func TestPropGrowShrinkInverse(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for iter := 0; iter < 200; iter++ {
		stats := randomStatsSet(r, 1, 4, 3)
		dfss := Random(stats, Options{SizeBound: 4, Threshold: 0.1}, r)
		d := dfss[0]
		before := d.Sel.Clone()
		moves := growMoves(d)
		if len(moves) == 0 {
			continue
		}
		m := moves[r.Intn(len(moves))]
		prev, had := d.Sel[m.t]
		applyMove(d.Sel, m)
		restore(d.Sel, m.t, prev, had)
		if !selectionsEqual(before, d.Sel) {
			t.Fatalf("grow+restore changed selection: %v -> %v", before, d.Sel)
		}
	}
}

// TestPropMovesPreserveValidity: every grow and shrink move offered on
// a valid selection yields a valid selection.
func TestPropMovesPreserveValidity(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	for iter := 0; iter < 200; iter++ {
		stats := randomStatsSet(r, 1, 4, 3)
		dfss := Random(stats, Options{SizeBound: 4, Threshold: 0.1}, r)
		d := dfss[0]
		for _, m := range growMoves(d) {
			prev, had := d.Sel[m.t]
			applyMove(d.Sel, m)
			if err := d.Validate(0); err != nil {
				t.Fatalf("grow move broke validity: %v", err)
			}
			restore(d.Sel, m.t, prev, had)
		}
		for _, m := range shrinkMoves(d) {
			prev, had := d.Sel[m.t]
			applyMove(d.Sel, m)
			if err := d.Validate(0); err != nil {
				t.Fatalf("shrink move broke validity: %v", err)
			}
			restore(d.Sel, m.t, prev, had)
		}
	}
}

// TestPropStatsInvariants: extraction-independent invariants of the
// statistics the algorithms consume, on random stats.
func TestPropStatsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	for iter := 0; iter < 100; iter++ {
		stats := randomStatsSet(r, 1, 5, 4)[0]
		for _, e := range stats.Entities() {
			types := stats.TypesOf(e)
			for i := 1; i < len(types); i++ {
				if stats.TypeTotal(types[i-1]) < stats.TypeTotal(types[i]) {
					t.Fatal("types not in descending significance")
				}
			}
			for _, tp := range types {
				vals := stats.ValuesOf(tp)
				sum := 0
				for i, vc := range vals {
					if i > 0 && vals[i-1].Count < vc.Count {
						t.Fatal("values not in descending count")
					}
					sum += vc.Count
				}
				if sum != stats.TypeTotal(tp) {
					t.Fatalf("value counts sum %d != type total %d", sum, stats.TypeTotal(tp))
				}
			}
		}
	}
}
