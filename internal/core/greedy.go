package core

import "repro/internal/feature"

// GreedyGlobal implements the "better algorithms" future-work
// direction the paper closes with: instead of per-result local search,
// it grows all DFSs together, repeatedly applying the single grow move
// — across every result — with the highest marginal DoD gain, breaking
// ties toward the most frequent feature (the padding order). Budgets
// fill one feature at a time, so coordination emerges naturally: once
// one result opens a type, the type's gain becomes positive for every
// other result that carries it.
//
// For monotone objectives this greedy is the standard approximation
// scaffold; the DoD objective is monotone under selection growth but
// not submodular across results (a type's gain *rises* when a partner
// selects it), so no classical ratio applies — empirically it lands
// between TopK and SingleSwap. It runs in O(L·n · moves·n) time with
// no swap phase, making it the cheapest coordinated method.
func GreedyGlobal(stats []*feature.Stats, opts Options) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	for {
		type candidate struct {
			i     int
			m     move
			gain  int
			score padScore
		}
		best := candidate{i: -1}
		for i, d := range dfss {
			if d.Sel.Size() >= opts.SizeBound {
				continue
			}
			for _, m := range growMoves(d) {
				g := typeDelta(dfss, i, m.t, d.Sel[m.t], m.depth, opts.Threshold)
				sc := scoreMove(d.Stats, m)
				if best.i == -1 || g > best.gain ||
					(g == best.gain && sc.better(best.score)) {
					best = candidate{i: i, m: m, gain: g, score: sc}
				}
			}
		}
		if best.i == -1 {
			break // every DFS is full (or has nothing left to add)
		}
		applyMove(dfss[best.i].Sel, best.m)
	}
	return dfss
}
