package core

import "repro/internal/feature"

// MultiSwap generates DFSs with the paper's multi-swap method:
// block-coordinate ascent where each step replaces one result's entire
// selection with the *optimal* valid selection given the other DFSs,
// computed exactly by a nested dynamic program (per-entity prefix DP
// combined by a knapsack over entities). At the fixpoint no change of
// any number of features in any single DFS can increase the total DoD
// — multi-swap optimality.
func MultiSwap(stats []*feature.Stats, opts Options) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	for _, d := range dfss {
		pad(d, opts.SizeBound) // same valid starting summary as SingleSwap
	}
	multiSwapAscend(dfss, opts)
	if opts.Pad {
		for _, d := range dfss {
			pad(d, opts.SizeBound)
		}
	}
	return dfss
}

// multiSwapAscend runs the block-coordinate ascent to its fixpoint.
// It is inherently sequential across results: each step conditions on
// every other result's current selection.
func multiSwapAscend(dfss []*DFS, opts Options) {
	rounds := 0
	for {
		improved := false
		for i := range dfss {
			base := resultDoD(dfss, i, opts.Threshold)
			cand := optimalSelection(dfss, i, opts)
			old := dfss[i].Sel
			dfss[i].Sel = cand
			if resultDoD(dfss, i, opts.Threshold) > base {
				improved = true
			} else {
				dfss[i].Sel = old
			}
		}
		rounds++
		if !improved || (opts.MaxRounds > 0 && rounds >= opts.MaxRounds) {
			break
		}
	}
}

// optimalSelection computes, exactly, a valid selection for result i
// maximizing Σ_j DoD(D_i, D_j) with the other selections fixed,
// subject to |D_i| ≤ L. Among equal-gain selections it prefers smaller
// ones and then pads with the most significant features, keeping the
// result a faithful summary.
func optimalSelection(dfss []*DFS, i int, opts Options) Selection {
	d := dfss[i]
	L := opts.SizeBound

	// Per-entity best-gain-at-cost curves.
	entities := d.Stats.Entities()
	curves := make([][]int, len(entities))    // curves[e][c] = max gain with exactly c features in entity e
	choices := make([][][]int, len(entities)) // choices[e][c] = depth per type for that optimum (nil if infeasible)
	for ei, e := range entities {
		curves[ei], choices[ei] = entityCurve(dfss, i, e, L, opts.Threshold)
	}

	// Knapsack across entities: dp[c] = best total gain with exactly c
	// features; parent pointers reconstruct the per-entity allocation.
	const neg = -1 << 30
	dp := make([]int, L+1)
	for c := 1; c <= L; c++ {
		dp[c] = neg
	}
	parent := make([][]int, len(entities)) // parent[e][c] = features allocated to entity e at state c
	for ei := range entities {
		parent[ei] = make([]int, L+1)
		next := make([]int, L+1)
		for c := range next {
			next[c] = neg
		}
		for c := 0; c <= L; c++ {
			if dp[c] == neg {
				continue
			}
			for alloc := 0; alloc+c <= L && alloc < len(curves[ei]); alloc++ {
				if choices[ei][alloc] == nil && alloc != 0 {
					continue
				}
				if g := dp[c] + curves[ei][alloc]; g > next[c+alloc] {
					next[c+alloc] = g
					parent[ei][c+alloc] = alloc
				}
			}
		}
		dp = next
	}

	// Best gain at the smallest cost.
	bestC, bestG := 0, 0
	for c := 0; c <= L; c++ {
		if dp[c] != neg && dp[c] > bestG {
			bestG, bestC = dp[c], c
		}
	}

	sel := make(Selection)
	c := bestC
	for ei := len(entities) - 1; ei >= 0; ei-- {
		alloc := parent[ei][c]
		if alloc > 0 {
			order := d.Stats.TypesOf(entities[ei])
			for ti, depth := range choices[ei][alloc] {
				if depth > 0 {
					sel[order[ti]] = depth
				}
			}
		}
		c -= alloc
	}

	// Fill leftover budget with significance padding (never lowers DoD).
	cand := &DFS{Stats: d.Stats, Sel: sel}
	pad(cand, L)
	return cand.Sel
}

// entityCurve computes, for entity e of result i, the maximum
// differentiation gain achievable with exactly c features (c in
// 0..maxCost), honoring validity: the selected types are a prefix of
// the significance order and each selected type takes a prefix of its
// values (depth >= 1). It also returns, per cost, the depth vector
// over the type order realizing the optimum (nil when c is
// infeasible).
func entityCurve(dfss []*DFS, i int, e string, maxCost int, x float64) ([]int, [][]int) {
	d := dfss[i]
	order := d.Stats.TypesOf(e)

	// gain[t][depth] = number of other results differentiated by type
	// order[t] when result i shows its top-depth values.
	gain := make([][]int, len(order))
	for ti, t := range order {
		nvals := len(d.Stats.ValuesOf(t))
		gain[ti] = make([]int, nvals+1)
		for depth := 1; depth <= nvals; depth++ {
			g := 0
			for j, other := range dfss {
				if j == i {
					continue
				}
				dj, ok := other.Sel[t]
				if !ok {
					continue
				}
				if typeDiffers(d.Stats, other.Stats, t, depth, dj, x) {
					g++
				}
			}
			gain[ti][depth] = g
		}
	}

	const neg = -1 << 30
	// dp[k][c] = max gain selecting exactly the first k types with
	// total cost c. depthAt[k][c] = depth of type k-1 in that optimum.
	dp := make([][]int, len(order)+1)
	depthAt := make([][]int, len(order)+1)
	for k := range dp {
		dp[k] = make([]int, maxCost+1)
		depthAt[k] = make([]int, maxCost+1)
		for c := range dp[k] {
			dp[k][c] = neg
		}
	}
	dp[0][0] = 0
	for k := 1; k <= len(order); k++ {
		nvals := len(d.Stats.ValuesOf(order[k-1]))
		for c := 0; c <= maxCost; c++ {
			for depth := 1; depth <= nvals && depth <= c; depth++ {
				if dp[k-1][c-depth] == neg {
					continue
				}
				if g := dp[k-1][c-depth] + gain[k-1][depth]; g > dp[k][c] {
					dp[k][c] = g
					depthAt[k][c] = depth
				}
			}
		}
	}

	curve := make([]int, maxCost+1)
	choice := make([][]int, maxCost+1)
	curve[0] = 0
	choice[0] = []int{} // empty prefix: feasible, no types
	for c := 1; c <= maxCost; c++ {
		bestK := -1
		best := neg
		for k := 1; k <= len(order); k++ {
			if dp[k][c] > best {
				best = dp[k][c]
				bestK = k
			}
		}
		if bestK < 0 || best == neg {
			curve[c] = neg
			choice[c] = nil
			continue
		}
		curve[c] = best
		depths := make([]int, len(order))
		cc := c
		for k := bestK; k >= 1; k-- {
			dep := depthAt[k][cc]
			depths[k-1] = dep
			cc -= dep
		}
		choice[c] = depths
	}
	return curve, choice
}
