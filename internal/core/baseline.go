package core

import (
	"math/rand"

	"repro/internal/feature"
)

// TopK generates baseline DFSs that ignore differentiation entirely:
// each result independently takes its most significant valid features
// up to the size bound. This mirrors what frequency-biased snippet
// generators (eXtract, Figure 1 of the paper) show for a single
// result, and is the comparison point for the Figure 1 → Figure 2
// quality gap.
func TopK(stats []*feature.Stats, opts Options) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	for _, d := range dfss {
		pad(d, opts.SizeBound)
	}
	return dfss
}

// Random generates valid DFSs by repeatedly applying a uniformly
// random grow move until the budget is exhausted. It is the weakest
// baseline and a fuzzing aid: any valid selection is reachable.
func Random(stats []*feature.Stats, opts Options, rng *rand.Rand) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	for _, d := range dfss {
		for d.Sel.Size() < opts.SizeBound {
			moves := growMoves(d)
			if len(moves) == 0 {
				break
			}
			applyMove(d.Sel, moves[rng.Intn(len(moves))])
		}
	}
	return dfss
}

// Algorithm names a DFS-generation method for harnesses and CLIs.
type Algorithm string

const (
	AlgSingleSwap Algorithm = "single-swap"
	AlgMultiSwap  Algorithm = "multi-swap"
	AlgTopK       Algorithm = "top-k"
	AlgGreedy     Algorithm = "greedy"
	AlgExhaustive Algorithm = "exhaustive"
)

// Generate dispatches on the algorithm name. Random is excluded (it
// needs a seed); use the Random function directly.
func Generate(alg Algorithm, stats []*feature.Stats, opts Options) []*DFS {
	switch alg {
	case AlgSingleSwap:
		return SingleSwap(stats, opts)
	case AlgMultiSwap:
		return MultiSwap(stats, opts)
	case AlgTopK:
		return TopK(stats, opts)
	case AlgGreedy:
		return GreedyGlobal(stats, opts)
	case AlgExhaustive:
		return Exhaustive(stats, opts)
	default:
		return nil
	}
}

// Algorithms lists the deterministic generation methods.
func Algorithms() []Algorithm {
	return []Algorithm{AlgSingleSwap, AlgMultiSwap, AlgTopK, AlgGreedy, AlgExhaustive}
}
