package core

import (
	"runtime"
	"sync"

	"repro/internal/feature"
)

// ForEachParallel runs fn(i) for every i in [0, n) across a bounded
// worker pool. workers <= 0 selects GOMAXPROCS; n <= 1 or a single
// worker degrades to a plain loop. fn must only touch state owned by
// its index or be concurrency-safe itself. Shared by the pooled DFS
// generator here and the serving engine's fan-outs.
func ForEachParallel(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// GenerateParallel is Generate with the per-result independent phases
// — the initial valid top-fill and the final significance padding, and
// for the baselines the entire generation — spread across a worker
// pool. The swap algorithms' coordinate-ascent rounds stay sequential
// (each step conditions on all other selections), so results are
// bit-identical to Generate's; only wall time changes. Unknown
// algorithms return nil, as Generate does.
func GenerateParallel(alg Algorithm, stats []*feature.Stats, opts Options) []*DFS {
	switch alg {
	case AlgSingleSwap:
		return swapParallel(stats, opts, singleSwapAscend)
	case AlgMultiSwap:
		return swapParallel(stats, opts, multiSwapAscend)
	case AlgTopK:
		opts = opts.normalized()
		dfss := newDFSs(stats)
		ForEachParallel(len(dfss), 0, func(i int) { pad(dfss[i], opts.SizeBound) })
		return dfss
	default:
		// Greedy and exhaustive interleave results at every step; run
		// them serially.
		return Generate(alg, stats, opts)
	}
}

// swapParallel shares the parallel top-fill / ascend / re-pad shape of
// the two local-search algorithms.
func swapParallel(stats []*feature.Stats, opts Options, ascend func([]*DFS, Options)) []*DFS {
	opts = opts.normalized()
	dfss := newDFSs(stats)
	ForEachParallel(len(dfss), 0, func(i int) { pad(dfss[i], opts.SizeBound) })
	ascend(dfss, opts)
	if opts.Pad {
		ForEachParallel(len(dfss), 0, func(i int) { pad(dfss[i], opts.SizeBound) })
	}
	return dfss
}
