package xsact

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/table"
	"repro/internal/xseek"
)

// Markdown renders the comparison as a GitHub-flavoured Markdown table.
func (c *Comparison) Markdown() string { return c.tbl.Markdown() }

// CSV renders the comparison as CSV with a header row.
func (c *Comparison) CSV() string { return c.tbl.CSV() }

// SearchRanked runs Search and orders results by TF-IDF relevance
// (most relevant first) instead of document order. Scores accompany
// the results.
func (d *Document) SearchRanked(query string) ([]*Result, []float64, error) {
	ranked, err := d.eng.SearchRanked(query)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*Result, len(ranked))
	scores := make([]float64, len(ranked))
	for i, r := range ranked {
		out[i] = &Result{doc: d, res: r.Result, Label: r.Label}
		scores[i] = r.Score
	}
	return out, scores, nil
}

// SearchPage runs Search and returns one window of the document-order
// result list plus the total result count. limit <= 0 returns
// everything from offset on; an out-of-range offset yields an empty
// page, not an error. Concatenating consecutive pages reproduces
// Search's full result list.
func (d *Document) SearchPage(query string, limit, offset int) ([]*Result, int, error) {
	page, err := d.eng.SearchPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
	if err != nil {
		return nil, 0, err
	}
	out := make([]*Result, len(page.Results))
	for i, r := range page.Results {
		out[i] = &Result{doc: d, res: r, Label: r.Label}
	}
	return out, page.Total, nil
}

// SearchRankedPage is SearchPage over the relevance ordering: the top
// offset+limit results are selected with a bounded heap, skipping the
// full sort when the window ends before the result list does. Small
// windows over large uncached result sets route automatically to the
// engine's streamed pipeline, which never materializes the full result
// list; both routes return identical pages and exact totals.
// Concatenating consecutive pages reproduces SearchRanked.
func (d *Document) SearchRankedPage(query string, limit, offset int) ([]*Result, []float64, int, error) {
	page, err := d.eng.SearchRankedPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
	if err != nil {
		return nil, nil, 0, err
	}
	out := make([]*Result, len(page.Results))
	scores := make([]float64, len(page.Results))
	for i, r := range page.Results {
		out[i] = &Result{doc: d, res: r.Result, Label: r.Label}
		scores[i] = r.Score
	}
	return out, scores, page.Total, nil
}

// RankedPageOptions selects one window of the relevance ranking and
// how much accuracy it may trade for speed.
type RankedPageOptions struct {
	// Limit bounds the page size; <= 0 returns everything from Offset.
	Limit int
	// Offset is the window start in rank order.
	Offset int
	// Approx lets the engine stop scanning once no later result can
	// enter the page. The page itself stays exact — identical results,
	// scores, and order — but the returned total may be TotalUnknown.
	Approx bool
}

// SearchRankedPageOpts is SearchRankedPage with explicit options: the
// same exact page either way, plus the approximate mode that trades
// the exact total for an early stop on broad queries.
func (d *Document) SearchRankedPageOpts(query string, opts RankedPageOptions) ([]*Result, []float64, int, error) {
	acc := xseek.AccuracyExact
	if opts.Approx {
		acc = xseek.AccuracyApprox
	}
	page, err := d.eng.SearchRankedPage(query, xseek.SearchOptions{Limit: opts.Limit, Offset: opts.Offset, Accuracy: acc})
	if err != nil {
		return nil, nil, 0, err
	}
	out := make([]*Result, len(page.Results))
	scores := make([]float64, len(page.Results))
	for i, r := range page.Results {
		out[i] = &Result{doc: d, res: r.Result, Label: r.Label}
		scores[i] = r.Score
	}
	return out, scores, page.Total, nil
}

// TotalUnknown is the total reported by SearchStreamPage when the
// underlying stream stopped at the window's end without reaching the
// last result — the exact total would cost draining the stream, which
// is precisely what streamed paging avoids.
const TotalUnknown = xseek.StreamTotalUnknown

// SearchStreamPage is SearchPage over the lazy streaming pipeline: the
// engine pulls results one at a time from an early-terminating
// iterator stack and stops at the window's end, so the first page of a
// huge result list costs one page of work. Consecutive pages resume a
// cached cursor instead of re-searching. The returned total is
// TotalUnknown until some window reaches the end of the results;
// within any fixed epoch, concatenating consecutive pages reproduces
// Search's full result list.
func (d *Document) SearchStreamPage(query string, limit, offset int) ([]*Result, int, error) {
	page, err := d.eng.SearchStreamPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
	if err != nil {
		return nil, 0, err
	}
	out := make([]*Result, len(page.Results))
	for i, r := range page.Results {
		out[i] = &Result{doc: d, res: r, Label: r.Label}
	}
	return out, page.Total, nil
}

// SearchCleaned spell-corrects the query against the corpus vocabulary
// (edit distance ≤ 2) before searching, returning the corrected
// keywords so callers can show "did you mean".
func (d *Document) SearchCleaned(query string) ([]*Result, []string, error) {
	rs, cleaned, err := d.eng.SearchCleaned(query)
	if err != nil {
		return nil, cleaned, err
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = &Result{doc: d, res: r, Label: r.Label}
	}
	return out, cleaned, nil
}

// Library is a set of named documents with database selection: queries
// route to the corpus that covers their keywords best, the paper's
// "database selection" companion technique.
type Library struct {
	docs  map[string]*Document
	order []string
}

// NewLibrary creates an empty library.
func NewLibrary() *Library {
	return &Library{docs: make(map[string]*Document)}
}

// Add registers a document under a name, replacing any previous entry
// with that name.
func (l *Library) Add(name string, doc *Document) {
	if _, exists := l.docs[name]; !exists {
		l.order = append(l.order, name)
	}
	l.docs[name] = doc
}

// Names lists the registered documents in insertion order.
func (l *Library) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Search routes the query to the best-covering corpus and searches it,
// returning the chosen corpus name alongside the results. Selection
// works over sharded and unsharded documents alike (term statistics
// are aggregated across shards).
func (l *Library) Search(query string) (string, []*Result, error) {
	engines := make(map[string]*engine.Engine, len(l.docs))
	for name, d := range l.docs {
		engines[name] = d.eng
	}
	name, _ := engine.SelectEngine(engines, query)
	if name == "" {
		return "", nil, fmt.Errorf("xsact: no registered corpus contains keywords of %q", query)
	}
	results, err := l.docs[name].Search(query)
	return name, results, err
}

// CompareInteresting is Compare with contrast-based interestingness
// steering (the paper's future-work factor): feature types on which
// the results' frequencies disagree most strongly are favoured. It
// uses the weighted-greedy generator.
func CompareInteresting(results []*Result, opts CompareOptions) (*Comparison, error) {
	if len(results) < 2 {
		return nil, fmt.Errorf("xsact: comparison needs at least 2 results, got %d", len(results))
	}
	doc, inner, err := sameDocResults(results)
	if err != nil {
		return nil, err
	}
	stats := doc.eng.StatsForResults(inner)
	copts := core.Options{SizeBound: opts.SizeBound, Threshold: opts.Threshold}
	dfss := core.WeightedGreedy(stats, copts, core.ContrastInterest(stats))
	x := opts.Threshold
	if x <= 0 {
		x = core.DefaultThreshold
	}
	cmp := &Comparison{
		tbl: table.Build(dfss),
		DoD: core.TotalDoD(dfss, x),
	}
	for _, s := range stats {
		cmp.Labels = append(cmp.Labels, s.Label)
	}
	return cmp, nil
}
