// Sharded: the same corpus served monolithic and with 4 index shards,
// demonstrating that Options.Shards changes execution — parallel
// per-shard builds, fan-out/merge queries — but never results: both
// engines return identical result lists, rankings, and pages.
package main

import (
	"fmt"
	"log"

	xsact "repro"
)

func main() {
	mono, err := xsact.BuiltinDataset("reviews", 1)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := xsact.BuiltinDatasetWith("reviews", 1, xsact.Options{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engines: monolithic (%d shard) vs sharded (%d shards)\n\n",
		mono.Shards(), sharded.Shards())

	query := "tomtom gps"
	a, err := mono.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sharded.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q: %d results from both engines\n", query, len(a))
	for i := range a {
		marker := "=="
		if a[i].Label != b[i].Label {
			marker = "!!" // never happens: sharded search is result-identical
		}
		fmt.Printf("  %s %s\n", marker, a[i].Describe())
	}

	// Ranked pages come from a K-way heap merge of per-shard streams —
	// and still match the monolithic ranking entry for entry.
	top, scores, total, err := sharded.SearchRankedPage(query, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop 3 of %d by relevance (sharded ranked page):\n", total)
	for i, r := range top {
		fmt.Printf("  %.3f  %s\n", scores[i], r.Label)
	}
}
