// Movies: the evaluation workload. Runs the eight benchmark queries
// QM1–QM8 over the IMDB-style corpus, comparing single-swap and
// multi-swap DFS generation on quality (DoD) and latency — a
// miniature of Figure 4 driven entirely through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	xsact "repro"
	"repro/internal/dataset"
)

func main() {
	doc, err := xsact.BuiltinDataset("movies", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query  keywords                  results  alg          DoD   time")
	for qi, q := range dataset.MovieQueries() {
		results, err := doc.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, alg := range []string{"single-swap", "multi-swap"} {
			start := time.Now()
			cmp, err := xsact.Compare(results, xsact.CompareOptions{SizeBound: 10, Algorithm: alg})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("QM%-4d %-25s %-8d %-12s %-5d %.4fs\n",
				qi+1, q, len(results), alg, cmp.DoD, time.Since(start).Seconds())
		}
	}

	// Show one concrete table: the first two results of QM5.
	results, err := doc.Search(dataset.MovieQueries()[4])
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := xsact.Compare(results[:2], xsact.CompareOptions{SizeBound: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQM5 sample comparison (first two results, DoD=%d):\n\n%s", cmp.DoD, cmp.Text())
}
