// Outdoor: the paper's Outdoor Retailer walkthrough. A shopper issues
// "men, jackets"; every matching product is lifted to its brand, and
// the brand catalogs are compared. The table shows each brand's focus
// — Marmot mainly sells rain jackets while Columbia focuses on
// insulated ski jackets — without browsing hundreds of products.
package main

import (
	"fmt"
	"log"

	xsact "repro"
)

func main() {
	doc, err := xsact.BuiltinDataset("retailer", 1)
	if err != nil {
		log.Fatal(err)
	}

	const query = "men jackets"
	products, err := doc.Search(query)
	if err != nil {
		log.Fatal(err)
	}

	var brands []*xsact.Result
	for _, p := range products {
		brands = append(brands, p.Lift("brand"))
	}
	brands = xsact.Dedupe(brands)
	fmt.Printf("query %q matched %d products across %d brands\n\n",
		query, len(products), len(brands))

	cmp, err := xsact.Compare(brands, xsact.CompareOptions{SizeBound: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brand comparison (L=12, DoD=%d):\n\n%s", cmp.DoD, cmp.Text())
	fmt.Println("\nReading the subcategory row left to right shows each brand's")
	fmt.Println("jacket focus; a rain-jacket shopper picks the rain-heavy brand.")
}
