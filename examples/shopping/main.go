// Shopping: the paper's Figures 1–2 walkthrough on the Product
// Reviews corpus. A customer searches {TomTom, GPS}, looks at the
// frequency snippets each result would get from an eXtract-style
// generator (Figure 1), then at the coordinated comparison table
// XSACT builds instead (Figure 2), and sees the DoD gap between the
// two on the same size budget.
package main

import (
	"fmt"
	"log"

	xsact "repro"
)

func main() {
	doc, err := xsact.BuiltinDataset("reviews", 1)
	if err != nil {
		log.Fatal(err)
	}

	const query = "tomtom gps"
	results, err := doc.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: %d results\n\n", query, len(results))

	sel := results
	if len(sel) > 3 {
		sel = sel[:3] // the customer ticks the first three checkboxes
	}

	fmt.Println("— What snippets show (independent, frequency-biased; Figure 1) —")
	for _, r := range sel {
		fmt.Println(" ", r.Snippet(query, 5))
	}

	snipDoD, err := xsact.SnippetDoD(sel, query, 8)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := xsact.Compare(sel, xsact.CompareOptions{SizeBound: 8, Algorithm: "multi-swap"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n— XSACT comparison table (Figure 2), L=8 —\n\n%s", multi.Text())
	fmt.Printf("\nsnippet DoD (Figure 1 baseline) = %d\n", snipDoD)
	fmt.Printf("XSACT multi-swap DoD            = %d\n", multi.DoD)
}
