// Distributed: the movie corpus served by shard-server legs behind an
// HTTP coordinator, demonstrating that distribution changes execution
// — wire frames, fan-out, epoch-checked writes — but never results:
// the cluster returns the same result lists, scores, and pages as a
// single in-process engine.
//
// With XSACT_CLUSTER set to comma-separated shard-server base URLs
// (e.g. the two-role quickstart: xsactd -shard-server on :9101/:9102),
// the example dials that real cluster. Without it, the example hosts
// two loopback legs itself, so it runs self-contained.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	xsact "repro"
	"repro/internal/dataset"
	"repro/internal/dist"
)

func main() {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1})
	const corpus = "Movies" // the name xsactd -shard-server registers

	endpoints := selfHost(corpus)
	if env := os.Getenv("XSACT_CLUSTER"); env != "" {
		endpoints = strings.Split(env, ",")
	}

	cluster, err := xsact.FromCluster(root, endpoints, corpus, xsact.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	local, err := xsact.BuiltinDataset("movies", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d legs at %v\n\n", len(endpoints), endpoints)

	query := "action revenge"
	a, err := local.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	b, err := cluster.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q: %d results in process, %d through the cluster\n", query, len(a), len(b))
	for i := range a {
		marker := "=="
		if i >= len(b) || a[i].Label != b[i].Label {
			marker = "!!" // never happens: the coordinator is result-identical
		}
		fmt.Printf("  %s %s\n", marker, a[i].Describe())
	}

	// Ranked pages reassemble from per-leg wire envelopes — scores
	// travel as raw float bits, so the page matches bit for bit.
	top, scores, total, err := cluster.SearchRankedPage(query, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	wantTop, wantScores, _, err := local.SearchRankedPage(query, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop 3 of %d by relevance (through the coordinator):\n", total)
	for i, r := range top {
		marker := "=="
		if i >= len(wantTop) || r.Label != wantTop[i].Label || scores[i] != wantScores[i] {
			marker = "!!"
		}
		fmt.Printf("  %s %.3f  %s\n", marker, scores[i], r.Label)
	}

	// The corpus is live through the coordinator too: the write is
	// broadcast to every leg under the epoch protocol, searchable
	// immediately, and removed again to leave the cluster unchanged.
	id, err := cluster.AddEntity("<movie><title>Distributed Smoke</title><keyword>distsmoke</keyword></movie>")
	if err != nil {
		log.Fatal(err)
	}
	hits, err := cluster.Search("distsmoke")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive write: entity %s visible in %d result(s) across the cluster\n", id, len(hits))
	if err := cluster.RemoveEntity(id); err != nil {
		log.Fatal(err)
	}
}

// selfHost boots two in-process shard legs on loopback listeners and
// returns their endpoints — the same servers `xsactd -shard-server`
// runs, minus the extra OS processes.
func selfHost(corpus string) []string {
	const k = 2
	endpoints := make([]string, 0, k)
	for g := 0; g < k; g++ {
		sv, err := dist.NewServer(g, k)
		if err != nil {
			log.Fatal(err)
		}
		if err := sv.AddCorpus(corpus, dataset.Movies(dataset.MoviesConfig{Seed: 1})); err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(l, sv)
		endpoints = append(endpoints, "http://"+l.Addr().String())
	}
	return endpoints
}
