// Quickstart: parse a small XML catalog, run a keyword query, and
// print the comparison table of the two results — the whole XSACT
// pipeline in ~30 lines of API use.
package main

import (
	"fmt"
	"log"

	xsact "repro"
)

const catalog = `
<store>
  <product>
    <name>TomTom Go 630</name>
    <price>199</price>
    <rating>4.2</rating>
    <reviews>
      <review><pro>easy to read</pro><pro>compact</pro><bestuse>auto</bestuse></review>
      <review><pro>easy to read</pro><pro>compact</pro></review>
      <review><pro>easy to read</pro><bestuse>auto</bestuse></review>
    </reviews>
  </product>
  <product>
    <name>TomTom Go 730</name>
    <price>249</price>
    <rating>4.1</rating>
    <reviews>
      <review><pro>acquire satellites quickly</pro><pro>easy to setup</pro></review>
      <review><pro>easy to setup</pro><pro>compact</pro><bestuse>fast routing</bestuse></review>
    </reviews>
  </product>
</store>`

func main() {
	doc, err := xsact.ParseString(catalog)
	if err != nil {
		log.Fatal(err)
	}

	results, err := doc.Search("tomtom")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q returned %d results:\n", "tomtom", len(results))
	for i, r := range results {
		fmt.Printf("  %d. %s\n", i+1, r.Describe())
	}

	cmp, err := xsact.Compare(results, xsact.CompareOptions{SizeBound: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomparison table (L=7, DoD=%d):\n\n%s", cmp.DoD, cmp.Text())
}
