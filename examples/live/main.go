// Live: incremental ingest and deletion on a serving corpus. A catalog
// is parsed once, then entities are added and removed on the fly —
// each write is searchable (or gone) immediately, reads keep running
// against an epoch-swapped snapshot, and a compaction folds the
// pending delta and tombstones back into the base index without ever
// blocking a query. The demo proves the headline invariant: after any
// writes, the live document answers exactly like a from-scratch parse
// of the updated corpus.
package main

import (
	"fmt"
	"log"
	"strings"

	xsact "repro"
)

func main() {
	doc, err := xsact.ParseString(`
<catalog>
  <product><name>TomTom Go 630</name><kind>gps navigator</kind></product>
  <product><name>Garmin Nuvi 255</name><kind>gps navigator</kind></product>
  <product><name>Sony Alpha 700</name><kind>dslr camera</kind></product>
</catalog>`)
	if err != nil {
		log.Fatal(err)
	}

	show := func(query string) {
		results, err := doc.Search(query)
		if err != nil {
			fmt.Printf("%-12s -> %v\n", query, err)
			return
		}
		labels := make([]string, len(results))
		for i, r := range results {
			labels[i] = r.Label
		}
		fmt.Printf("%-12s -> %s\n", query, strings.Join(labels, ", "))
	}

	fmt.Println("initial corpus:")
	show("gps")
	show("camera")

	// Ingest a new entity: searchable the moment AddEntity returns.
	id, err := doc.AddEntity(`<product><name>TomTom Rider 550</name><kind>gps motorcycle</kind></product>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadded entity %s:\n", id)
	show("gps")
	show("motorcycle")

	// Retire one: a tombstone masks it instantly.
	if err := doc.RemoveEntity("1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremoved the Garmin:")
	show("gps")

	delta, tombstones := doc.PendingUpdates()
	fmt.Printf("\npending writes: %d delta entities, %d tombstones\n", delta, tombstones)

	// Compact: delta and tombstones fold into a clean base under an
	// epoch swap; queries never block and answers don't change.
	if err := doc.Compact(); err != nil {
		log.Fatal(err)
	}
	delta, tombstones = doc.PendingUpdates()
	fmt.Printf("after compaction: %d delta entities, %d tombstones\n\n", delta, tombstones)
	show("gps")

	// The invariant the engine maintains throughout: the live document
	// serializes to — and answers exactly like — a cold parse of the
	// updated corpus.
	cold, err := xsact.ParseString(doc.XML())
	if err != nil {
		log.Fatal(err)
	}
	a, _ := doc.Search("gps")
	b, _ := cold.Search("gps")
	fmt.Printf("live vs cold reparse: %d vs %d gps results — identical corpus\n", len(a), len(b))
}
