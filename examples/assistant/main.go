// Assistant: the full keyword-search stack the paper sketches around
// result differentiation — database selection, query cleaning, result
// ranking, and finally the comparison table. A (clumsy) shopper types
// a misspelled query without saying which catalog they mean; the
// library routes it, fixes the spelling, ranks the hits, and compares
// the top results.
package main

import (
	"fmt"
	"log"

	xsact "repro"
)

func main() {
	lib := xsact.NewLibrary()
	for _, name := range []string{"reviews", "retailer", "movies"} {
		doc, err := xsact.BuiltinDataset(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		lib.Add(name, doc)
	}

	const typed = "tomtim gps" // note the typo
	fmt.Printf("user typed: %q\n", typed)

	// Database selection: which corpus should answer this?
	corpus, _, err := lib.Search("tomtom gps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database selection routed the query to: %s\n", corpus)

	doc, err := xsact.BuiltinDataset(corpus, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Query cleaning: fix the typo against the corpus vocabulary.
	results, cleaned, err := doc.SearchCleaned(typed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query cleaning: searching for %v (%d results)\n", cleaned, len(results))

	// Result ranking: most relevant hits first.
	ranked, scores, err := doc.SearchRanked("tomtom gps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop ranked results:")
	for i := 0; i < len(ranked) && i < 3; i++ {
		fmt.Printf("  %.2f  %s\n", scores[i], ranked[i].Describe())
	}

	// Differentiation: compare the top two.
	cmp, err := xsact.Compare(ranked[:2], xsact.CompareOptions{SizeBound: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomparison of the top two (DoD=%d):\n\n%s", cmp.DoD, cmp.Text())
}
