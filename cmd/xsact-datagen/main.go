// Command xsact-datagen writes the synthetic XML corpora to disk so
// they can be inspected, versioned, or fed back to xsact -data <file>.
//
// Usage:
//
//	xsact-datagen -out ./data            # writes reviews.xml, retailer.xml, movies.xml
//	xsact-datagen -out ./data -only movies -movies 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/xmltree"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		only     = flag.String("only", "", "write a single dataset: reviews, retailer, or movies")
		seed     = flag.Int64("seed", 1, "generator seed")
		products = flag.Int("products", 8, "products per category (reviews dataset)")
		perBrand = flag.Int("per-brand", 60, "products per brand (retailer dataset)")
		movies   = flag.Int("movies", 300, "movie count (movies dataset)")
	)
	flag.Parse()

	if err := run(*out, *only, *seed, *products, *perBrand, *movies); err != nil {
		fmt.Fprintln(os.Stderr, "xsact-datagen:", err)
		os.Exit(1)
	}
}

func run(out, only string, seed int64, products, perBrand, movies int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	gens := map[string]func() *xmltree.Node{
		"reviews": func() *xmltree.Node {
			return dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed, ProductsPerCategory: products})
		},
		"retailer": func() *xmltree.Node {
			return dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed, ProductsPerBrand: perBrand})
		},
		"movies": func() *xmltree.Node {
			return dataset.Movies(dataset.MoviesConfig{Seed: seed, Movies: movies})
		},
	}
	names := []string{"reviews", "retailer", "movies"}
	if only != "" {
		if _, ok := gens[only]; !ok {
			return fmt.Errorf("unknown dataset %q", only)
		}
		names = []string{only}
	}
	for _, name := range names {
		path := filepath.Join(out, name+".xml")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		root := gens[name]()
		if err := xmltree.WriteXML(f, root); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d nodes)\n", path, root.CountNodes())
	}
	return nil
}
