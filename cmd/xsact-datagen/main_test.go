package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xmltree"
)

func TestWriteAllDatasets(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "", 1, 2, 5, 30); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"reviews.xml", "retailer.xml", "movies.xml"} {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		root, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s does not reparse: %v", name, err)
		}
		if root.CountNodes() < 10 {
			t.Fatalf("%s suspiciously small", name)
		}
	}
}

func TestWriteSingleDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "movies", 1, 2, 5, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "movies.xml")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "reviews.xml")); !os.IsNotExist(err) {
		t.Fatal("-only must not write other datasets")
	}
}

func TestUnknownDataset(t *testing.T) {
	if err := run(t.TempDir(), "bogus", 1, 2, 5, 20); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestCreatesOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	if err := run(dir, "movies", 1, 2, 5, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "movies.xml")); err != nil {
		t.Fatal(err)
	}
}
