package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// The -fig dist mode: the cost of distribution. For each leg count K
// the movie workload runs twice — through the in-process sharded
// engine and through an HTTP coordinator fanned out over K real
// loopback shard servers — and the report pairs the two latency
// histograms per (K, query, mode). The result pages are checked
// bit-identical along the way (score bits and order), so the numbers
// compare equal work, and a divergence fails the run rather than
// producing a misleading report.

const distCorpus = "movies"

// distReport is the -fig dist JSON document.
type distReport struct {
	Corpus string     `json:"corpus"`
	Movies int        `json:"movies"`
	Seed   int64      `json:"seed"`
	Limit  int        `json:"limit"`
	Legs   []int      `json:"legs"`
	Cells  []distCell `json:"cells"`
}

// distCell pairs the local and distributed histograms for one
// (K, query, mode).
type distCell struct {
	K     int         `json:"k"`
	Local latencyCell `json:"local"`
	Dist  latencyCell `json:"dist"`
}

// startBenchLegs boots k shard servers on loopback listeners and
// returns their endpoints plus a shutdown func.
func startBenchLegs(k int, doc string) ([]string, func(), error) {
	endpoints := make([]string, 0, k)
	var closers []func()
	shutdown := func() {
		for _, c := range closers {
			c()
		}
	}
	for g := 0; g < k; g++ {
		sv, err := dist.NewServer(g, k)
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		root, err := xmltree.ParseString(doc)
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		if err := sv.AddCorpus(distCorpus, root); err != nil {
			shutdown()
			return nil, nil, fmt.Errorf("leg %d: %w", g, err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		hs := &http.Server{Handler: sv}
		go hs.Serve(l)
		closers = append(closers, func() { hs.Close() })
		endpoints = append(endpoints, "http://"+l.Addr().String())
	}
	return endpoints, shutdown, nil
}

// runDist writes the distribution-cost report JSON to w.
func runDist(root *xmltree.Node, movies int, seed int64, iters int, w io.Writer) error {
	const limit = 10
	legCounts := []int{1, 2, 4}
	doc := xmltree.XMLString(root)
	rep := distReport{Corpus: distCorpus, Movies: movies, Seed: seed, Limit: limit, Legs: legCounts}

	for _, k := range legCounts {
		local := shard.Build(xmltree.MustParseString(doc), k)
		endpoints, shutdown, err := startBenchLegs(k, doc)
		if err != nil {
			return err
		}
		co, err := dist.Dial(endpoints, distCorpus, xmltree.MustParseString(doc), dist.Config{})
		if err != nil {
			shutdown()
			return err
		}
		for _, q := range dataset.MovieQueries() {
			modes := []struct {
				name string
				opts xseek.SearchOptions
			}{
				{"ranked_exact", xseek.SearchOptions{Limit: limit}},
				{"ranked_approx", xseek.SearchOptions{Limit: limit, Accuracy: xseek.AccuracyApprox}},
			}
			for _, m := range modes {
				// Equal work or no numbers: the two sides must produce the
				// same page bit for bit before their latencies are compared.
				lp, _, lerr := local.SearchRankedPageStream(q, m.opts)
				dp, _, derr := co.SearchRankedPageStream(q, m.opts)
				if (lerr == nil) != (derr == nil) {
					shutdown()
					return fmt.Errorf("K=%d %q %s: err %v vs %v", k, q, m.name, derr, lerr)
				}
				if lerr == nil && procPageKey(lp) != procPageKey(dp) {
					shutdown()
					return fmt.Errorf("K=%d %q %s: pages diverge", k, q, m.name)
				}

				opts := m.opts
				lc, err := measure(q, m.name, iters, func() (int, error) {
					_, total, err := local.SearchRankedPageStream(q, opts)
					return total, err
				})
				if err != nil {
					shutdown()
					return err
				}
				dc, err := measure(q, m.name, iters, func() (int, error) {
					_, total, err := co.SearchRankedPageStream(q, opts)
					return total, err
				})
				if err != nil {
					shutdown()
					return err
				}
				rep.Cells = append(rep.Cells, distCell{K: k, Local: lc, Dist: dc})
			}
		}
		shutdown()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// procPageKey fingerprints a ranked page down to the score bits.
func procPageKey(rs []*xseek.RankedResult) string {
	key := ""
	for _, r := range rs {
		key += fmt.Sprintf("%s@%016x;", r.Node.ID, math.Float64bits(r.Score))
	}
	return key
}
