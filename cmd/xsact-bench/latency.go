package main

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// The -fig latency mode: a request-latency histogram over the serving
// engine, as JSON for dashboards and regression diffing. Each movie
// workload query runs -iters times through three serving modes — the
// doc-order page, the exact ranked page (which auto-routes broad
// queries to the score-bounded streamed pipeline), and the approximate
// ranked page — and each (query, mode) cell reports nearest-rank
// percentiles over its own samples. One warm-up request per cell is
// excluded so the engine's lazily built caches and decoded posting
// blocks don't dominate the tail.

// latencyCell is one (query, mode) histogram in wire form. Percentile
// fields are microseconds, nearest-rank over Iters samples.
type latencyCell struct {
	Query  string  `json:"query"`
	Mode   string  `json:"mode"`
	Iters  int     `json:"iters"`
	Total  int     `json:"total"` // result count (-1 = approximate)
	MeanUS float64 `json:"mean_us"`
	MinUS  float64 `json:"min_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// latencyReport is the -fig latency JSON document.
type latencyReport struct {
	Corpus string        `json:"corpus"`
	Movies int           `json:"movies"`
	Seed   int64         `json:"seed"`
	Limit  int           `json:"limit"`
	Cells  []latencyCell `json:"cells"`
}

// percentileUS returns the nearest-rank q-th percentile of the sorted
// sample set, in microseconds.
func percentileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1].Nanoseconds()) / 1e3
}

// measure times one request fn iters times (after one excluded
// warm-up) and folds the samples into a cell.
func measure(query, mode string, iters int, fn func() (int, error)) (latencyCell, error) {
	total, err := fn() // warm-up, excluded
	if err != nil {
		return latencyCell{}, err
	}
	samples := make([]time.Duration, 0, iters)
	var sum time.Duration
	for i := 0; i < iters; i++ {
		start := time.Now()
		if total, err = fn(); err != nil {
			return latencyCell{}, err
		}
		d := time.Since(start)
		samples = append(samples, d)
		sum += d
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return latencyCell{
		Query: query, Mode: mode, Iters: iters, Total: total,
		MeanUS: float64(sum.Nanoseconds()) / float64(iters) / 1e3,
		MinUS:  float64(samples[0].Nanoseconds()) / 1e3,
		P50US:  percentileUS(samples, 0.50),
		P95US:  percentileUS(samples, 0.95),
		P99US:  percentileUS(samples, 0.99),
		MaxUS:  float64(samples[len(samples)-1].Nanoseconds()) / 1e3,
	}, nil
}

// runLatency builds the serving engine over the movie corpus and
// writes the latency report JSON to w.
func runLatency(root *xmltree.Node, movies int, seed int64, iters int, w io.Writer) error {
	const limit = 10
	eng := engine.New(root)
	rep := latencyReport{Corpus: "movies", Movies: movies, Seed: seed, Limit: limit}
	for _, q := range dataset.MovieQueries() {
		modes := []struct {
			name string
			fn   func() (int, error)
		}{
			{"page", func() (int, error) {
				p, err := eng.SearchPage(q, xseek.SearchOptions{Limit: limit})
				if err != nil {
					return 0, err
				}
				return p.Total, nil
			}},
			{"ranked_exact", func() (int, error) {
				p, err := eng.SearchRankedPage(q, xseek.SearchOptions{Limit: limit})
				if err != nil {
					return 0, err
				}
				return p.Total, nil
			}},
			{"ranked_approx", func() (int, error) {
				p, err := eng.SearchRankedPage(q, xseek.SearchOptions{Limit: limit, Accuracy: xseek.AccuracyApprox})
				if err != nil {
					return 0, err
				}
				return p.Total, nil
			}},
		}
		for _, m := range modes {
			cell, err := measure(q, m.name, iters, m.fn)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
