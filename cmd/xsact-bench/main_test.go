package main

import "testing"

func TestRunFigures(t *testing.T) {
	// Small corpus keeps the test fast; all output modes must succeed.
	for _, fig := range []string{"4a", "4b", "sweeps", "scale", "algs", "richness", "focus"} {
		if err := run(fig, 120, 1, 6, 0.1); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunAll(t *testing.T) {
	if err := run("all", 120, 1, 6, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", 50, 1, 6, 0.1); err == nil {
		t.Fatal("unknown figure should error")
	}
}
