package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dataset"
)

func TestRunFigures(t *testing.T) {
	// Small corpus keeps the test fast; all output modes must succeed.
	for _, fig := range []string{"4a", "4b", "sweeps", "scale", "algs", "richness", "focus"} {
		if err := run(fig, 120, 1, 6, 0.1, 2); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunAll(t *testing.T) {
	if err := run("all", 120, 1, 6, 0.1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", 50, 1, 6, 0.1, 2); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// TestRunLatency validates the -fig latency JSON shape: one cell per
// (query, mode) with ordered percentiles.
func TestRunLatency(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 80})
	var buf bytes.Buffer
	if err := runLatency(root, 80, 1, 3, &buf); err != nil {
		t.Fatal(err)
	}
	var rep latencyReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("latency output is not JSON: %v", err)
	}
	wantCells := len(dataset.MovieQueries()) * 3
	if len(rep.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if c.Iters != 3 {
			t.Fatalf("%s/%s: iters = %d, want 3", c.Query, c.Mode, c.Iters)
		}
		if c.MinUS <= 0 || c.P50US < c.MinUS || c.P95US < c.P50US || c.P99US < c.P95US || c.MaxUS < c.P99US {
			t.Fatalf("%s/%s: percentiles out of order: %+v", c.Query, c.Mode, c)
		}
		if c.Mode != "ranked_approx" && c.Total < 0 {
			t.Fatalf("%s/%s: exact mode reported unknown total", c.Query, c.Mode)
		}
	}
}
