package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dataset"
)

func TestRunFigures(t *testing.T) {
	// Small corpus keeps the test fast; all output modes must succeed.
	for _, fig := range []string{"4a", "4b", "sweeps", "scale", "algs", "richness", "focus"} {
		if err := run(fig, 120, 1, 6, 0.1, 2); err != nil {
			t.Fatalf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunAll(t *testing.T) {
	if err := run("all", 120, 1, 6, 0.1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", 50, 1, 6, 0.1, 2); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// TestRunDist validates the -fig dist JSON shape: one paired cell per
// (K, query, mode), both sides sampled.
func TestRunDist(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 60})
	var buf bytes.Buffer
	if err := runDist(root, 60, 1, 2, &buf); err != nil {
		t.Fatal(err)
	}
	var rep distReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("dist output is not JSON: %v", err)
	}
	wantCells := len(rep.Legs) * len(dataset.MovieQueries()) * 2
	if len(rep.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if c.Local.Iters != 2 || c.Dist.Iters != 2 {
			t.Fatalf("K=%d %s/%s: iters %d/%d, want 2", c.K, c.Local.Query, c.Local.Mode, c.Local.Iters, c.Dist.Iters)
		}
		if c.Local.Query != c.Dist.Query || c.Local.Mode != c.Dist.Mode {
			t.Fatalf("K=%d: mismatched pair %s/%s vs %s/%s", c.K, c.Local.Query, c.Local.Mode, c.Dist.Query, c.Dist.Mode)
		}
	}
}

// TestRunLatency validates the -fig latency JSON shape: one cell per
// (query, mode) with ordered percentiles.
func TestRunLatency(t *testing.T) {
	root := dataset.Movies(dataset.MoviesConfig{Seed: 1, Movies: 80})
	var buf bytes.Buffer
	if err := runLatency(root, 80, 1, 3, &buf); err != nil {
		t.Fatal(err)
	}
	var rep latencyReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("latency output is not JSON: %v", err)
	}
	wantCells := len(dataset.MovieQueries()) * 3
	if len(rep.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if c.Iters != 3 {
			t.Fatalf("%s/%s: iters = %d, want 3", c.Query, c.Mode, c.Iters)
		}
		if c.MinUS <= 0 || c.P50US < c.MinUS || c.P95US < c.P50US || c.P99US < c.P95US || c.MaxUS < c.P99US {
			t.Fatalf("%s/%s: percentiles out of order: %+v", c.Query, c.Mode, c)
		}
		if c.Mode != "ranked_approx" && c.Total < 0 {
			t.Fatalf("%s/%s: exact mode reported unknown total", c.Query, c.Mode)
		}
	}
}
