// Command xsact-bench regenerates the paper's evaluation: Figure 4(a)
// (DoD quality per query) and Figure 4(b) (processing time per query)
// over the IMDB-style movie corpus, plus the ablation sweeps described
// in DESIGN.md.
//
// Usage:
//
// The latency mode (-fig latency) times the serving engine itself —
// doc-order pages, exact ranked pages, and approximate (score-bounded
// early-stop) ranked pages — and emits per-query p50/p95/p99 request
// latencies as JSON.
//
// Usage:
//
// The dist mode (-fig dist) measures the cost of distribution: each
// workload query runs through the in-process sharded engine and
// through an HTTP coordinator over K ∈ {1, 2, 4} loopback shard
// servers (bit-identity checked first), and the report pairs the two
// latency histograms.
//
// Usage:
//
//	xsact-bench [-fig 4a|4b|sweeps|latency|dist|all] [-movies N] [-seed S] [-L bound] [-x threshold] [-iters N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/xseek"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "which output to produce: 4a, 4b, sweeps, or all")
		movies = flag.Int("movies", 300, "movie corpus size")
		seed   = flag.Int64("seed", 1, "corpus seed")
		bound  = flag.Int("L", 10, "DFS size bound L")
		thresh = flag.Float64("x", 0.10, "differentiation threshold x")
		iters  = flag.Int("iters", 50, "samples per (query, mode) cell for -fig latency")
	)
	flag.Parse()

	if err := run(*fig, *movies, *seed, *bound, *thresh, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "xsact-bench:", err)
		os.Exit(1)
	}
}

func run(fig string, movies int, seed int64, bound int, thresh float64, iters int) error {
	root := dataset.Movies(dataset.MoviesConfig{Seed: seed, Movies: movies})
	opts := core.Options{SizeBound: bound, Threshold: thresh}
	algs := []core.Algorithm{core.AlgSingleSwap, core.AlgMultiSwap}

	switch fig {
	case "algs":
		// Extension experiment: all deterministic generators head to
		// head on the benchmark workload (top-k = independent
		// snippets, greedy = coordinated global greedy).
		all := []core.Algorithm{core.AlgTopK, core.AlgGreedy, core.AlgSingleSwap, core.AlgMultiSwap}
		rep, err := experiment.Run(root, dataset.MovieQueries(), all, opts)
		if err != nil {
			return err
		}
		rep.WriteDoDTable(os.Stdout)
		fmt.Println()
		rep.WriteTimeTable(os.Stdout)
		return nil
	case "focus":
		all := []core.Algorithm{core.AlgTopK, core.AlgGreedy, core.AlgSingleSwap, core.AlgMultiSwap}
		for _, l := range []int{3, 4, 5, 6, 8} {
			fr, err := experiment.RunFocusRecovery(seed, "men jackets", all,
				core.Options{SizeBound: l, Threshold: thresh, Pad: true})
			if err != nil {
				return err
			}
			experiment.WriteFocusRecovery(os.Stdout, fmt.Sprintf(
				"Focus recovery at L=%d — does the table reveal each brand's specialty? (query 'men jackets')", l), fr)
			fmt.Println()
		}
		return nil
	case "richness":
		pts, err := experiment.RichnessSweep(seed, "gps", algs, opts, []int{5, 10, 20, 40, 80, 160})
		if err != nil {
			return err
		}
		experiment.WriteRichness(os.Stdout,
			"Richness — DoD and time vs reviews per product (query 'gps')", pts)
		return nil
	case "scale":
		// The Figure 4(b) crossover at scale: broad 2-keyword queries
		// return ~70 results; the sweep truncates to growing prefixes.
		eng := xseek.New(root)
		stats, err := experiment.ResultStats(eng, "action revenge")
		if err != nil {
			return err
		}
		experiment.WriteScale(os.Stdout,
			"Scale — DoD and time vs number of compared results (query 'action revenge')",
			experiment.ScaleSweep(stats, algs, opts, []int{5, 10, 20, 40, 60, 80}))
		return nil
	case "latency":
		// Serving-engine request latencies (p50/p95/p99 per query and
		// execution mode) as JSON — see latency.go.
		return runLatency(root, movies, seed, iters, os.Stdout)
	case "dist":
		// Distribution cost: paired in-process vs HTTP-coordinator
		// latencies at K ∈ {1, 2, 4} loopback shard legs — see dist.go.
		return runDist(root, movies, seed, iters, os.Stdout)
	case "4a", "4b", "all":
		rep, err := experiment.Run(root, dataset.MovieQueries(), algs, opts)
		if err != nil {
			return err
		}
		if fig == "4a" || fig == "all" {
			rep.WriteDoDTable(os.Stdout)
			fmt.Println()
		}
		if fig == "4b" || fig == "all" {
			rep.WriteTimeTable(os.Stdout)
			fmt.Println()
		}
		if fig != "all" {
			return nil
		}
	case "sweeps":
	default:
		return fmt.Errorf("unknown -fig %q (want 4a, 4b, sweeps, latency, or all)", fig)
	}

	// Ablation sweeps. The size-bound sweep runs on the movie
	// workload's first query; the threshold sweep runs on the Product
	// Reviews corpus, whose relative frequencies are real percentages
	// (movie-level features are 0-or-1, which makes x a no-op there).
	eng := xseek.New(root)
	stats, err := experiment.ResultStats(eng, dataset.MovieQueries()[0])
	if err != nil {
		return err
	}
	experiment.WriteSweep(os.Stdout,
		"Ablation — DoD vs size bound L (movies QM1)", "L",
		experiment.SizeBoundSweep(stats, algs, thresh, []int{2, 4, 6, 8, 10, 14, 20}))
	fmt.Println()

	reviews := xseek.New(dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}))
	rstats, err := experiment.ResultStats(reviews, "gps")
	if err != nil {
		return err
	}
	experiment.WriteSweep(os.Stdout,
		"Ablation — DoD vs differentiation threshold x (reviews, query 'gps')", "x",
		experiment.ThresholdSweep(rstats, algs, bound, []float64{0.02, 0.05, 0.10, 0.25, 0.50, 1.0, 2.0}))
	return nil
}
