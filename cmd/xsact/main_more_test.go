package main

import "testing"

func TestRunNewFormats(t *testing.T) {
	for _, format := range []string{"markdown", "md", "csv"} {
		if err := run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "multi-swap", format, false); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
	}
}

func TestRunGreedyAlgorithm(t *testing.T) {
	if err := run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "greedy", "text", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanedQuery(t *testing.T) {
	// "tomtim" is a typo; with -clean it resolves to tomtom and the
	// comparison proceeds.
	if err := run("reviews", 1, "tomtim gps", false, "1,2", 6, 0.1, "top-k", "text", true); err != nil {
		t.Fatal(err)
	}
	// Without -clean the same query fails with NoMatchError.
	if err := run("reviews", 1, "tomtim gps", false, "1,2", 6, 0.1, "top-k", "text", false); err == nil {
		t.Fatal("typo query without -clean should fail")
	}
}
