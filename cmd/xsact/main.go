// Command xsact is the end-to-end XSACT pipeline on the command line:
// load a dataset, run a keyword query, pick results, and print the
// comparison table of their Differentiation Feature Sets.
//
// Usage:
//
//	xsact -data reviews -query "tomtom gps" -list
//	xsact -data reviews -query "tomtom gps" -select 1,2 -L 6
//	xsact -data movies  -query "action revenge english" -alg multi-swap -format html
//	xsact -data /path/to/corpus.xml -query "..." -select all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func main() {
	var (
		data    = flag.String("data", "reviews", "dataset: reviews, retailer, movies, or a path to an XML file")
		seed    = flag.Int64("seed", 1, "seed for the built-in synthetic datasets")
		query   = flag.String("query", "", "keyword query (required)")
		list    = flag.Bool("list", false, "list results and exit (no comparison)")
		selects = flag.String("select", "all", "comma-separated 1-based result indices to compare, or 'all'")
		bound   = flag.Int("L", core.DefaultSizeBound, "comparison table size bound L (features per result)")
		thresh  = flag.Float64("x", core.DefaultThreshold, "differentiation threshold x")
		alg     = flag.String("alg", string(core.AlgMultiSwap), "DFS algorithm: single-swap, multi-swap, greedy, or top-k")
		format  = flag.String("format", "text", "table format: text, html, markdown, or csv")
		clean   = flag.Bool("clean", false, "spell-correct query keywords against the corpus vocabulary")
	)
	flag.Parse()

	if err := run(*data, *seed, *query, *list, *selects, *bound, *thresh, *alg, *format, *clean); err != nil {
		fmt.Fprintln(os.Stderr, "xsact:", err)
		os.Exit(1)
	}
}

func run(data string, seed int64, query string, list bool, selects string, bound int, thresh float64, alg, format string, clean bool) error {
	if query == "" {
		return fmt.Errorf("-query is required")
	}
	root, err := loadDataset(data, seed)
	if err != nil {
		return err
	}
	eng := xseek.New(root)
	var results []*xseek.Result
	if clean {
		var cleaned []string
		results, cleaned, err = eng.SearchCleaned(query)
		if err == nil {
			fmt.Printf("searching for: %s\n", strings.Join(cleaned, " "))
		}
	} else {
		results, err = eng.Search(query)
	}
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no results for %q", query)
	}

	if list {
		for i, r := range results {
			fmt.Printf("%2d. %s\n", i+1, xseek.DescribeResult(r, 4))
		}
		return nil
	}

	picked, err := pickResults(results, selects)
	if err != nil {
		return err
	}
	if len(picked) < 2 {
		return fmt.Errorf("comparison needs at least 2 results (got %d)", len(picked))
	}

	stats := make([]*feature.Stats, len(picked))
	for i, r := range picked {
		stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
	}
	opts := core.Options{SizeBound: bound, Threshold: thresh, Pad: true}
	dfss := core.Generate(core.Algorithm(alg), stats, opts)
	if dfss == nil {
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	tbl := table.Build(dfss)
	switch format {
	case "text":
		err = tbl.WriteText(os.Stdout)
	case "html":
		err = tbl.WriteHTML(os.Stdout)
	case "markdown", "md":
		err = tbl.WriteMarkdown(os.Stdout)
	case "csv":
		err = tbl.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Printf("\ntotal DoD = %d over %d results (algorithm %s, L=%d, x=%.0f%%)\n",
		core.TotalDoD(dfss, thresh), len(dfss), alg, bound, thresh*100)
	return nil
}

func loadDataset(data string, seed int64) (*xmltree.Node, error) {
	switch data {
	case "reviews":
		return dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}), nil
	case "retailer":
		return dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed}), nil
	case "movies":
		return dataset.Movies(dataset.MoviesConfig{Seed: seed}), nil
	}
	f, err := os.Open(data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// User-supplied files get generous but finite resource limits.
	return xmltree.ParseLimited(f, xmltree.Limits{MaxDepth: 10000, MaxNodes: 10_000_000})
}

func pickResults(results []*xseek.Result, selects string) ([]*xseek.Result, error) {
	if selects == "all" {
		return results, nil
	}
	var out []*xseek.Result
	for _, part := range strings.Split(selects, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -select entry %q: %w", part, err)
		}
		if idx < 1 || idx > len(results) {
			return nil, fmt.Errorf("-select index %d out of range 1..%d", idx, len(results))
		}
		out = append(out, results[idx-1])
	}
	return out, nil
}
