package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func TestLoadBuiltinDatasets(t *testing.T) {
	for _, name := range []string{"reviews", "retailer", "movies"} {
		root, err := loadDataset(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if root.CountNodes() < 10 {
			t.Fatalf("%s: suspiciously small corpus", name)
		}
	}
}

func TestLoadDatasetFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.xml")
	if err := os.WriteFile(path, []byte(`<r><a>x</a></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := loadDataset(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if root.Tag != "r" {
		t.Fatalf("root = %q", root.Tag)
	}
	if _, err := loadDataset(filepath.Join(dir, "missing.xml"), 0); err == nil {
		t.Fatal("missing file should error")
	}
}

func fakeResults(n int) []*xseek.Result {
	out := make([]*xseek.Result, n)
	for i := range out {
		node := xmltree.NewElement("product")
		out[i] = &xseek.Result{Node: node, Label: "r"}
	}
	return out
}

func TestPickResults(t *testing.T) {
	rs := fakeResults(4)
	all, err := pickResults(rs, "all")
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %v %d", err, len(all))
	}
	some, err := pickResults(rs, "1, 3")
	if err != nil || len(some) != 2 || some[0] != rs[0] || some[1] != rs[2] {
		t.Fatalf("subset pick failed: %v", err)
	}
	for _, bad := range []string{"0", "5", "x", "1,,2"} {
		if _, err := pickResults(rs, bad); err == nil {
			t.Errorf("pickResults(%q) should error", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Exercise the full CLI path (writing to stdout is fine in tests).
	if err := run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "multi-swap", "text", false); err != nil {
		t.Fatal(err)
	}
	if err := run("reviews", 1, "tomtom gps", true, "all", 6, 0.1, "multi-swap", "text", false); err != nil {
		t.Fatal(err)
	}
	if err := run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "single-swap", "html", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"no query", func() error { return run("reviews", 1, "", false, "all", 6, 0.1, "multi-swap", "text", false) }},
		{"bad alg", func() error { return run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "bogus", "text", false) }},
		{"bad format", func() error { return run("reviews", 1, "tomtom gps", false, "1,2", 6, 0.1, "top-k", "pdf", false) }},
		{"one result", func() error { return run("reviews", 1, "tomtom gps", false, "1", 6, 0.1, "top-k", "text", false) }},
		{"no match", func() error { return run("reviews", 1, "zzznope", false, "all", 6, 0.1, "top-k", "text", false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
