// Command xsactd serves XSACT's web demo (the paper's Figure 5): a
// search box over the built-in datasets, a result list with
// checkboxes, a size-bound field, and a "Compare" button that renders
// the comparison table. A versioned JSON API (/api/v1/search,
// /api/v1/compare, /api/v1/snippet, /api/v1/metrics) exposes the same
// pipeline to programmatic clients and load generators.
//
// Each dataset's corpus and serving engine are built lazily on the
// first request that touches them, then shared — with their query,
// feature-stats, and DFS caches — across all subsequent requests.
// With -snapshot-dir, an engine's derived state (inverted index +
// inferred schema) is reloaded from disk when a valid snapshot exists
// and written back after a fresh build, so restarts skip the rebuild.
// -snapshot-format picks the layout written: the default "v4" compact
// layout is mmap-ed on load and decodes postings lazily as queries
// touch them (near-zero restart); "gob" writes the legacy layouts.
// Loading accepts every layout regardless of the flag.
//
// With -shards N each corpus is split into N index shards (at
// top-level entity boundaries) that build in parallel and serve
// queries through a fan-out/merge executor; results are identical to
// the unsharded engine. Snapshots are per-layout: a sharded engine
// writes the multi-shard format, whose shards reload lazily and
// survive single-shard corruption by rebuilding only the bad shard.
//
// Usage:
//
// The corpus is live: POST /api/v1/documents adds a top-level entity
// (immediately searchable), DELETE /api/v1/documents removes one, and
// POST /api/v1/compact folds pending writes back into the base index
// under an epoch swap that never blocks queries. -compact-every N
// compacts automatically after N pending writes. With -snapshot-dir,
// accepted writes are persisted in a journaled snapshot layout and
// replayed on restart.
//
// The binary also hosts the two distributed roles: -shard-server
// serves one shard leg of every dataset over the versioned wire API
// (/shard/v1/*), and -coordinator serves the same web UI and JSON API
// as the standalone server with every query fanned out to the legs
// over HTTP — bit-identical to -shards=K in one process.
//
// Usage:
//
//	xsactd [-addr :8080] [-seed 1] [-snapshot-dir DIR] [-snapshot-format v4|gob] [-shards N] [-compact-every N] [-pprof :6060]
//	xsactd -shard-server -shard-id I -shard-count K [-addr :9101] [-seed 1] [-snapshot-dir DIR] [-peer URL]
//	xsactd -coordinator URL1,URL2,... [-addr :8080] [-seed 1] [-replicas N] [-max-inflight N] [-dist-timeout 5s] [-dist-retries 2] [-dist-hedge 0] [-dist-partial]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/persist"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Int64("seed", 1, "dataset seed")
		snapshotDir  = flag.String("snapshot-dir", "", "directory for engine snapshots (empty = rebuild on every start)")
		snapFormat   = flag.String("snapshot-format", "v4", "snapshot layout to write: v4 (compact, mmap-ed on load) or gob (legacy v1/v2/v3); every layout still loads")
		shards       = flag.Int("shards", 1, "index shards per dataset (1 = monolithic index)")
		compactEvery = flag.Int("compact-every", 64, "auto-compact the live write path after this many pending writes (0 = manual compaction only)")
		pprofAddr    = flag.String("pprof", "", "profiling listen address for /debug/pprof/ and /debug/memstats (empty = profiling off); keep it off public ingress")

		shardServer = flag.Bool("shard-server", false, "serve one shard leg over the wire API instead of the web UI")
		shardID     = flag.Int("shard-id", 0, "this leg's shard number (with -shard-server)")
		shardCount  = flag.Int("shard-count", 1, "total shard legs in the cluster (with -shard-server)")
		peer        = flag.String("peer", "", "live replica base URL to fetch snapshots from when the local one is missing or stale (with -shard-server)")
		coordinator = flag.String("coordinator", "", "comma-separated shard-server base URLs; serve as the HTTP fan-out coordinator")
		replicas    = flag.Int("replicas", 1, "replicas per shard group: consecutive coordinator URLs form one group's replica set")
		maxInflight = flag.Int("max-inflight", 0, "cap concurrently running ranked queries at the coordinator, shedding excess with 503 (0 = no admission control)")
		distTimeout = flag.Duration("dist-timeout", 5*time.Second, "coordinator per-request leg timeout")
		distRetries = flag.Int("dist-retries", 2, "coordinator retries per leg call after a transport failure")
		distHedge   = flag.Duration("dist-hedge", 0, "launch a hedged duplicate leg read after this delay (0 = off)")
		distPartial = flag.Bool("dist-partial", false, "let ranked queries degrade to flagged partial pages when a leg stays unreachable")
	)
	flag.Parse()

	if *shardServer {
		log.Fatal(runShardServer(*addr, *seed, *shardID, *shardCount, *snapshotDir, *peer))
	}

	var srv *server
	var err error
	if *coordinator != "" {
		cfg := dist.Config{Timeout: *distTimeout, Retries: *distRetries,
			Hedge: *distHedge, AllowPartial: *distPartial,
			MaxInflight: *maxInflight}
		srv, err = newCoordinatorServer(*seed, strings.Split(*coordinator, ","), *replicas, *compactEvery, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsactd:", err)
			os.Exit(1)
		}
		log.Printf("xsactd coordinator on %s (legs: %s, replicas: %d)", *addr, *coordinator, *replicas)
		log.Fatal(http.ListenAndServe(*addr, srv.routes()))
	}

	format, err := snapshotFormat(*snapFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsactd:", err)
		os.Exit(1)
	}
	srv, err = newServer(*seed, *snapshotDir, *shards, *compactEvery, format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsactd:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("xsactd profiling on %s (/debug/pprof/, /debug/memstats)", *pprofAddr)
			// Profiling is best-effort: losing the side listener should
			// not take the server down.
			log.Printf("xsactd profiling listener stopped: %v", http.ListenAndServe(*pprofAddr, profilingHandler()))
		}()
	}
	log.Printf("xsactd listening on %s (datasets: %v, shards: %d)", *addr, srv.datasetNames(), *shards)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// snapshotFormat maps the -snapshot-format flag to a persist format
// selector: "v4" writes the compact mmap-able layout, "gob" the legacy
// automatic v1/v2/v3 one. Reading is format-agnostic either way.
func snapshotFormat(name string) (int, error) {
	switch name {
	case "v4":
		return persist.CompactFormatVersion, nil
	case "gob":
		return 0, nil
	}
	return 0, fmt.Errorf("-snapshot-format %q: want v4 or gob", name)
}

// datasetNames lists the loaded corpora in menu order.
func (s *server) datasetNames() []string {
	names := make([]string, len(s.order))
	copy(names, s.order)
	return names
}
