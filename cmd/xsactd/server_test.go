package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/persist"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newServer(1, "", 1, 0, persist.CompactFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.routes())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHomePage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"XSACT", "Product Reviews", "Outdoor Retailer", "Movies", "<form"} {
		if !strings.Contains(body, want) {
			t.Fatalf("home page missing %q", want)
		}
	}
}

func TestSearchPage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/?dataset=Product+Reviews&q=tomtom+gps")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "results</h2>") {
		t.Fatalf("search page missing results header:\n%s", body[:200])
	}
	if !strings.Contains(body, `type="checkbox"`) {
		t.Fatal("search page missing result checkboxes")
	}
	if !strings.Contains(body, "Compare selected") {
		t.Fatal("search page missing compare button")
	}
}

func TestSearchNoMatchShowsError(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/?dataset=Movies&q=zzznope")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "search error") {
		t.Fatal("unmatched query should render an error message")
	}
}

func TestComparePage(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"L":       {"8"},
		"alg":     {"multi-swap"},
		"sel":     {"0", "1"},
	}
	code, body := get(t, srv.URL+"/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	for _, want := range []string{"xsact-comparison", "total DoD", "product:name"} {
		if !strings.Contains(body, want) {
			t.Fatalf("compare page missing %q", want)
		}
	}
}

func TestCompareRejectsSingleSelection(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"sel":     {"0"},
	}
	code, _ := get(t, srv.URL+"/compare?"+params.Encode())
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	srv := testServer(t)
	cases := []url.Values{
		{"dataset": {"Nope"}, "q": {"x"}, "sel": {"0", "1"}},
		{"dataset": {"Movies"}, "q": {"zzznope"}, "sel": {"0", "1"}},
		{"dataset": {"Product Reviews"}, "q": {"tomtom gps"}, "sel": {"0", "9999"}},
		{"dataset": {"Product Reviews"}, "q": {"tomtom gps"}, "sel": {"0", "1"}, "alg": {"bogus"}},
	}
	for i, params := range cases {
		code, _ := get(t, srv.URL+"/compare?"+params.Encode())
		if code != http.StatusBadRequest {
			t.Fatalf("case %d: status = %d, want 400", i, code)
		}
	}
}

func TestCompareDefaultsBadSizeBound(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"L":       {"not-a-number"},
		"alg":     {"top-k"},
		"sel":     {"0", "1"},
	}
	code, body := get(t, srv.URL+"/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "L=10") {
		t.Fatal("bad L should fall back to the default bound")
	}
}

func TestNotFound(t *testing.T) {
	srv := testServer(t)
	code, _ := get(t, srv.URL+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

func TestDatasetNames(t *testing.T) {
	s, err := newServer(1, "", 1, 0, persist.CompactFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	names := s.datasetNames()
	if len(names) != 3 || names[0] != "Product Reviews" {
		t.Fatalf("datasetNames = %v", names)
	}
	// Returned slice must be a copy.
	names[0] = "mutated"
	if s.order[0] == "mutated" {
		t.Fatal("datasetNames leaks internal state")
	}
}

func TestDidYouMean(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/?dataset=Product+Reviews&q=tomtim+gps")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "showing results for") || !strings.Contains(body, "tomtom") {
		t.Fatal("typo query should show the corrected keywords")
	}
	// An exact query must not display the correction banner.
	_, body = get(t, srv.URL+"/?dataset=Product+Reviews&q=tomtom+gps")
	if strings.Contains(body, "showing results for") {
		t.Fatal("exact query must not claim a correction")
	}
}

func TestCompareAfterCleanedSearch(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtim gps"}, // typo — compare must clean identically
		"L":       {"6"},
		"alg":     {"multi-swap"},
		"sel":     {"0", "1"},
	}
	code, body := get(t, srv.URL+"/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(body, "total DoD") {
		t.Fatal("comparison after cleaned search failed")
	}
}

func TestResultDetailPage(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"idx":     {"0"},
	}
	code, body := get(t, srv.URL+"/result?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(body, "<pre>") || !strings.Contains(body, "&lt;product&gt;") {
		t.Fatal("detail page missing the result XML")
	}
	// Listing links to the detail page.
	_, listing := get(t, srv.URL+"/?dataset=Product+Reviews&q=tomtom+gps")
	if !strings.Contains(listing, "/result?") {
		t.Fatal("result listing missing detail links")
	}
}

func TestResultDetailBadIndex(t *testing.T) {
	srv := testServer(t)
	for _, idx := range []string{"-1", "9999", "x", ""} {
		params := url.Values{
			"dataset": {"Product Reviews"},
			"q":       {"tomtom gps"},
			"idx":     {idx},
		}
		code, _ := get(t, srv.URL+"/result?"+params.Encode())
		if code != http.StatusBadRequest {
			t.Fatalf("idx %q: status = %d, want 400", idx, code)
		}
	}
}

func TestAutoDatasetSelection(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/?dataset="+url.QueryEscape(autoDataset)+"&q=horror+vampire")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "auto-selected dataset <b>Movies</b>") {
		t.Fatal("movie query should auto-route to the Movies corpus")
	}
	// The compare form must carry the concrete dataset so the pipeline
	// downstream works.
	if !strings.Contains(body, `name="dataset" value="Movies"`) {
		t.Fatal("compare form not bound to the selected corpus")
	}
	// Hopeless query: friendly message, no crash.
	code, body = get(t, srv.URL+"/?dataset="+url.QueryEscape(autoDataset)+"&q=xyzzyplugh")
	if code != http.StatusOK || !strings.Contains(body, "no dataset contains") {
		t.Fatalf("no-match auto search: %d %q", code, body)
	}
}

// TestSearchPagePagination drives the HTML pagination controls: page
// windows, the "showing x–y" header, global checkbox indices, and the
// prev/next links.
func TestSearchPagePagination(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/?dataset=Movies&q=thriller&limit=2")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "(showing 1–2)") {
		t.Fatal("first page missing 'showing 1–2' header")
	}
	if !strings.Contains(body, `name="sel" value="0"`) || !strings.Contains(body, `name="sel" value="1"`) {
		t.Fatal("first page checkboxes not 0 and 1")
	}
	if !strings.Contains(body, "offset=2") || !strings.Contains(body, "next") {
		t.Fatal("first page missing next link")
	}

	code, body = get(t, srv.URL+"/?dataset=Movies&q=thriller&limit=2&offset=2")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "(showing 3–4)") {
		t.Fatal("second page missing 'showing 3–4' header")
	}
	// Checkbox indices are positions in the full result list, so the
	// compare endpoint resolves them identically on any page.
	if !strings.Contains(body, `name="sel" value="2"`) || !strings.Contains(body, `name="sel" value="3"`) {
		t.Fatal("second page checkboxes not global indices 2 and 3")
	}
	if !strings.Contains(body, "offset=0") || !strings.Contains(body, "prev") {
		t.Fatal("second page missing prev link")
	}
}
