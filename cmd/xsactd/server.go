package main

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// sameKeywords reports whether the cleaned keywords equal the query's
// own tokens (i.e. no spelling correction happened).
func sameKeywords(query string, cleaned []string) bool {
	orig := index.TokenizeQuery(query)
	if len(orig) != len(cleaned) {
		return false
	}
	for i := range orig {
		if orig[i] != cleaned[i] {
			return false
		}
	}
	return true
}

// lazyEngine defers corpus generation and engine construction to the
// first request that needs the dataset, then shares the one engine —
// and all its caches — across every later request.
type lazyEngine struct {
	once  sync.Once
	build func() *xmltree.Node
	eng   *engine.Engine
}

func (l *lazyEngine) get() *engine.Engine {
	l.once.Do(func() { l.eng = engine.New(l.build()) })
	return l.eng
}

// server holds one lazily-built, shared serving engine per dataset.
type server struct {
	datasets map[string]*lazyEngine
	order    []string
}

func newServer(seed int64) (*server, error) {
	s := &server{datasets: make(map[string]*lazyEngine)}
	add := func(name string, build func() *xmltree.Node) {
		s.datasets[name] = &lazyEngine{build: build}
		s.order = append(s.order, name)
	}
	add("Product Reviews", func() *xmltree.Node {
		return dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed})
	})
	add("Outdoor Retailer", func() *xmltree.Node {
		return dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed})
	})
	add("Movies", func() *xmltree.Node {
		return dataset.Movies(dataset.MoviesConfig{Seed: seed})
	})
	return s, nil
}

// engineFor returns the shared engine of a dataset, building it on
// first use. Unknown names return nil.
func (s *server) engineFor(name string) *engine.Engine {
	l, ok := s.datasets[name]
	if !ok {
		return nil
	}
	return l.get()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleSearch)
	mux.HandleFunc("/compare", s.handleCompare)
	mux.HandleFunc("/result", s.handleResult)
	return mux
}

const pageHead = `<!DOCTYPE html>
<html><head><title>XSACT — Structured Search Result Comparison</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
table.xsact-comparison { border-collapse: collapse; margin-top: 1em; }
table.xsact-comparison td, table.xsact-comparison th { border: 1px solid #999; padding: 4px 8px; }
td.unknown { color: #999; font-style: italic; }
.result { margin: 0.4em 0; }
</style></head><body>
<h1>XSACT</h1>
<p>Compare structured search results via Differentiation Feature Sets.</p>`

const pageFoot = `</body></html>`

// autoDataset is the dropdown entry for database selection: the server
// routes the query to the corpus that covers its keywords best.
const autoDataset = "Any (auto-select)"

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	ds := r.FormValue("dataset")
	if ds == "" {
		ds = s.order[0]
	}
	query := r.FormValue("q")

	fmt.Fprint(w, pageHead)
	fmt.Fprint(w, `<form method="get" action="/">dataset: <select name="dataset">`)
	for _, name := range append([]string{autoDataset}, s.order...) {
		sel := ""
		if name == ds {
			sel = " selected"
		}
		fmt.Fprintf(w, `<option%s>%s</option>`, sel, html.EscapeString(name))
	}
	fmt.Fprintf(w, `</select> keywords: <input name="q" value="%s" size="40"> <button>Search</button></form>`,
		html.EscapeString(query))

	if query != "" {
		s.renderResults(w, ds, query)
	}
	fmt.Fprint(w, pageFoot)
}

func (s *server) renderResults(w http.ResponseWriter, ds, query string) {
	if ds == autoDataset {
		// Database selection needs every corpus's vocabulary, so this is
		// the one path that forces all engines to exist.
		engines := make(map[string]*xseek.Engine, len(s.datasets))
		for name, l := range s.datasets {
			engines[name] = l.get().Xseek()
		}
		name, sel := xseek.SelectDatabase(engines, query)
		if sel == nil {
			fmt.Fprintf(w, "<p>no dataset contains keywords of %s</p>", html.EscapeString(query))
			return
		}
		ds = name
		fmt.Fprintf(w, "<p>auto-selected dataset <b>%s</b></p>", html.EscapeString(ds))
	}
	eng := s.engineFor(ds)
	if eng == nil {
		fmt.Fprintf(w, "<p>unknown dataset %s</p>", html.EscapeString(ds))
		return
	}
	results, cleaned, err := eng.SearchCleaned(query)
	if err != nil {
		fmt.Fprintf(w, "<p>search error: %s</p>", html.EscapeString(err.Error()))
		return
	}
	if joined := strings.Join(cleaned, " "); !sameKeywords(query, cleaned) {
		fmt.Fprintf(w, "<p>showing results for <b>%s</b></p>", html.EscapeString(joined))
	}
	fmt.Fprintf(w, `<h2>%d results</h2><form method="get" action="/compare">
<input type="hidden" name="dataset" value="%s">
<input type="hidden" name="q" value="%s">
table size bound L: <input name="L" value="10" size="3">
algorithm: <select name="alg"><option>multi-swap</option><option>single-swap</option><option>top-k</option></select>
<button>Compare selected</button><br>`,
		len(results), html.EscapeString(ds), html.EscapeString(query))
	for i, res := range results {
		detail := fmt.Sprintf("/result?dataset=%s&q=%s&idx=%d",
			url.QueryEscape(ds), url.QueryEscape(query), i)
		fmt.Fprintf(w, `<div class="result"><label><input type="checkbox" name="sel" value="%d"></label> <a href="%s">%s</a> — %s</div>`,
			i, detail, html.EscapeString(res.Label), html.EscapeString(xseek.DescribeResult(res, 4)))
	}
	fmt.Fprint(w, `</form>`)
}

// handleResult shows one result's full subtree — the demo's "click the
// name of the result and the entire result will be shown".
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	ds := r.FormValue("dataset")
	query := r.FormValue("q")
	eng := s.engineFor(ds)
	if eng == nil {
		http.Error(w, "unknown dataset", http.StatusBadRequest)
		return
	}
	results, _, err := eng.SearchCleaned(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	idx, err := strconv.Atoi(r.FormValue("idx"))
	if err != nil || idx < 0 || idx >= len(results) {
		http.Error(w, "bad result index", http.StatusBadRequest)
		return
	}
	res := results[idx]
	fmt.Fprint(w, pageHead)
	fmt.Fprintf(w, "<h2>%s</h2><pre>%s</pre>", html.EscapeString(res.Label),
		html.EscapeString(xmltree.XMLString(res.Node)))
	fmt.Fprintf(w, `<p><a href="/?dataset=%s&q=%s">back to results</a></p>`,
		url.QueryEscape(ds), url.QueryEscape(query))
	fmt.Fprint(w, pageFoot)
}

func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	ds := r.FormValue("dataset")
	query := r.FormValue("q")
	eng := s.engineFor(ds)
	if eng == nil {
		http.Error(w, "unknown dataset", http.StatusBadRequest)
		return
	}
	// Must mirror renderResults' search exactly so the checkbox
	// indices resolve to the same results.
	results, _, err := eng.SearchCleaned(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bound, err := strconv.Atoi(strings.TrimSpace(r.FormValue("L")))
	if err != nil || bound < 1 {
		bound = core.DefaultSizeBound
	}
	alg := core.Algorithm(r.FormValue("alg"))

	var selected []*xseek.Result
	for _, v := range r.Form["sel"] {
		idx, err := strconv.Atoi(v)
		if err != nil || idx < 0 || idx >= len(results) {
			http.Error(w, "bad selection", http.StatusBadRequest)
			return
		}
		selected = append(selected, results[idx])
	}
	if len(selected) < 2 {
		http.Error(w, "select at least two results to compare", http.StatusBadRequest)
		return
	}

	// Feature stats and the generated DFS set come from the engine's
	// caches, so repeating a comparison does no re-extraction.
	dfss := eng.Generate(alg, selected, core.Options{SizeBound: bound, Pad: true})
	if dfss == nil {
		http.Error(w, "unknown algorithm", http.StatusBadRequest)
		return
	}
	fmt.Fprint(w, pageHead)
	fmt.Fprintf(w, "<h2>Comparison (%s, L=%d)</h2>", html.EscapeString(string(alg)), bound)
	if err := table.Build(dfss).WriteHTML(w); err != nil {
		return
	}
	fmt.Fprintf(w, "<p>total DoD = %d</p>", core.TotalDoD(dfss, core.DefaultThreshold))
	fmt.Fprintf(w, `<p><a href="/?dataset=%s&q=%s">back to results</a></p>`,
		html.EscapeString(ds), html.EscapeString(query))
	fmt.Fprint(w, pageFoot)
}
