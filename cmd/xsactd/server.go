package main

import (
	"errors"
	"fmt"
	"html"
	"io/fs"
	"log"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/persist"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// sameKeywords reports whether the cleaned keywords equal the query's
// own tokens (i.e. no spelling correction happened).
func sameKeywords(query string, cleaned []string) bool {
	orig := index.TokenizeQuery(query)
	if len(orig) != len(cleaned) {
		return false
	}
	for i := range orig {
		if orig[i] != cleaned[i] {
			return false
		}
	}
	return true
}

// lazyEngine defers corpus generation and engine construction to the
// first request that needs the dataset, then shares the one engine —
// and all its caches — across every later request.
//
// It deliberately uses a mutex rather than sync.Once: a panic inside
// once.Do consumes the Once, so every later request would receive a
// nil engine and crash on dereference. Here a panicking build unwinds
// through the unlock and leaves eng nil, and the next request simply
// retries the build.
type lazyEngine struct {
	mu    sync.Mutex // serializes builds only; eng is read lock-free
	build func() *engine.Engine
	eng   atomic.Pointer[engine.Engine]
}

func (l *lazyEngine) get() *engine.Engine {
	if eng := l.eng.Load(); eng != nil {
		return eng
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if eng := l.eng.Load(); eng != nil {
		return eng // another request built it while we waited
	}
	eng := l.build()
	l.eng.Store(eng)
	return eng
}

// peek returns the engine if it has been built, without forcing — or
// waiting on — a build: the metrics endpoint must not stall behind an
// in-flight engine construction.
func (l *lazyEngine) peek() *engine.Engine {
	return l.eng.Load()
}

// server holds one lazily-built, shared serving engine per dataset,
// plus the snapshot configuration writes persist through.
type server struct {
	datasets    map[string]*lazyEngine
	order       []string
	slugs       map[string]string // dataset name → snapshot file slug
	seed        int64
	snapshotDir string
	snapFormat  int // persist.SaveFileFormat selector (0 = legacy gob)
	shards      int
	// snapMu serializes post-write snapshot saves: each save captures
	// the engine's state at save time (under the lock), so rename order
	// matches capture order and a stale image can never replace a newer
	// one when write handlers race.
	snapMu sync.Mutex
}

// newServer assembles the dataset table. When snapshotDir is non-empty
// each engine build first tries to reload its derived state from
// <snapshotDir>/<slug>-seed<seed>[-sN].snap, and writes that file back
// after a fresh build, so the second server startup skips index
// construction and schema inference entirely. shards > 1 builds every
// engine with that many index shards (and keeps their snapshots in
// per-layout files, so switching the flag never misreads a snapshot of
// the other layout).
func newServer(seed int64, snapshotDir string, shards, compactEvery, snapFormat int) (*server, error) {
	s := &server{
		datasets: make(map[string]*lazyEngine), slugs: make(map[string]string),
		seed: seed, snapshotDir: snapshotDir, snapFormat: snapFormat, shards: shards,
	}
	for _, d := range datasetDefs(seed) {
		d := d
		s.datasets[d.name] = &lazyEngine{build: func() *engine.Engine {
			return buildEngine(d.name, d.slug, seed, snapshotDir, shards, compactEvery, snapFormat, d.gen)
		}}
		s.order = append(s.order, d.name)
		s.slugs[d.name] = d.slug
	}
	return s, nil
}

// buildEngine generates the corpus and produces its serving engine,
// serving the derived state from a snapshot when one is present and
// valid. Snapshot failures are never fatal — a bad file just costs a
// rebuild (and is replaced by a fresh snapshot afterwards); a
// multi-shard snapshot with one corrupt shard section loads anyway and
// rebuilds only that shard lazily.
func buildEngine(name, slug string, seed int64, dir string, shards, compactEvery, snapFormat int, gen func() *xmltree.Node) *engine.Engine {
	root := gen()
	cfg := engine.Config{Shards: shards, AutoCompactThreshold: compactEvery}
	if dir == "" {
		return engine.NewWithConfig(root, cfg)
	}
	path := filepath.Join(dir, snapshotFile(slug, seed, shards))
	// For immutable (v1/v2) snapshots persist.Load verifies the corpus
	// fingerprint against the freshly generated root, which
	// deterministically encodes dataset and seed. A live (v3) snapshot
	// cannot match the generator's tree — it contains accepted writes —
	// so it is self-contained and trusted via its own checksums; the
	// per-layout file name (slug, seed, shard count) is what scopes it
	// to this dataset.
	eng, _, err := persist.LoadFile(path, root, cfg)
	if err == nil {
		log.Printf("xsactd: %s: engine loaded from snapshot %s", name, path)
		return eng
	}
	if !errors.Is(err, fs.ErrNotExist) {
		log.Printf("xsactd: %s: snapshot %s unusable (%v); rebuilding", name, path, err)
	}
	built := engine.NewWithConfig(root, cfg)
	if err := persist.SaveFileFormat(path, built, persist.Meta{CorpusName: name, Seed: seed}, snapFormat); err != nil {
		log.Printf("xsactd: %s: writing snapshot %s failed: %v", name, path, err)
	} else {
		log.Printf("xsactd: %s: wrote snapshot %s", name, path)
	}
	return built
}

// snapshotFile names a dataset's snapshot. Sharded layouts get their
// own files so flipping -shards never tries to reuse (and overwrite)
// the other layout's snapshot.
func snapshotFile(slug string, seed int64, shards int) string {
	if shards > 1 {
		return fmt.Sprintf("%s-seed%d-s%d.snap", slug, seed, shards)
	}
	return fmt.Sprintf("%s-seed%d.snap", slug, seed)
}

// engineFor returns the shared engine of a dataset, building it on
// first use. Unknown names return nil.
func (s *server) engineFor(name string) *engine.Engine {
	l, ok := s.datasets[name]
	if !ok {
		return nil
	}
	return l.get()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleSearch)
	mux.HandleFunc("/compare", s.handleCompare)
	mux.HandleFunc("/result", s.handleResult)
	mux.HandleFunc("/api/v1/search", s.apiSearch)
	mux.HandleFunc("/api/v1/compare", s.apiCompare)
	mux.HandleFunc("/api/v1/snippet", s.apiSnippet)
	mux.HandleFunc("/api/v1/metrics", s.apiMetrics)
	mux.HandleFunc("/api/v1/documents", s.apiDocuments)
	mux.HandleFunc("/api/v1/compact", s.apiCompact)
	return mux
}

// saveSnapshot persists a dataset's engine after a successful write so
// a restart replays it (a live engine with pending writes snapshots in
// the journaled v3 layout whatever format was requested — v4 carries
// no journal; once compacted it snapshots as a self-contained v4).
// Failures are logged, never fatal: the live engine still serves the
// write, it just won't survive a restart.
func (s *server) saveSnapshot(name string) {
	if s.snapshotDir == "" {
		return
	}
	eng := s.engineFor(name)
	if eng == nil {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	path := filepath.Join(s.snapshotDir, snapshotFile(s.slugs[name], s.seed, s.shards))
	if err := persist.SaveFileFormat(path, eng, persist.Meta{CorpusName: name, Seed: s.seed}, s.snapFormat); err != nil {
		log.Printf("xsactd: %s: writing snapshot %s failed: %v", name, path, err)
	}
}

const pageHead = `<!DOCTYPE html>
<html><head><title>XSACT — Structured Search Result Comparison</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
table.xsact-comparison { border-collapse: collapse; margin-top: 1em; }
table.xsact-comparison td, table.xsact-comparison th { border: 1px solid #999; padding: 4px 8px; }
td.unknown { color: #999; font-style: italic; }
.result { margin: 0.4em 0; }
</style></head><body>
<h1>XSACT</h1>
<p>Compare structured search results via Differentiation Feature Sets.</p>`

const pageFoot = `</body></html>`

// autoDataset is the dropdown entry for database selection: the server
// routes the query to the corpus that covers its keywords best.
const autoDataset = "Any (auto-select)"

// pageParams parses the optional limit/offset request parameters
// shared by the HTML and JSON search endpoints. Absent, malformed or
// negative values mean "no limit" / "no offset".
func pageParams(r *http.Request) (limit, offset int) {
	limit, _ = strconv.Atoi(r.FormValue("limit"))
	offset, _ = strconv.Atoi(r.FormValue("offset"))
	if limit < 0 {
		limit = 0
	}
	if offset < 0 {
		offset = 0
	}
	return limit, offset
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	ds := r.FormValue("dataset")
	if ds == "" {
		ds = s.order[0]
	}
	query := r.FormValue("q")
	limit, offset := pageParams(r)

	fmt.Fprint(w, pageHead)
	fmt.Fprint(w, `<form method="get" action="/">dataset: <select name="dataset">`)
	for _, name := range append([]string{autoDataset}, s.order...) {
		sel := ""
		if name == ds {
			sel = " selected"
		}
		fmt.Fprintf(w, `<option%s>%s</option>`, sel, html.EscapeString(name))
	}
	limitVal := ""
	if limit > 0 {
		limitVal = strconv.Itoa(limit)
	}
	fmt.Fprintf(w, `</select> keywords: <input name="q" value="%s" size="40"> page size: <input name="limit" value="%s" size="4"> <button>Search</button></form>`,
		html.EscapeString(query), limitVal)

	if query != "" {
		s.renderResults(w, ds, query, limit, offset)
	}
	fmt.Fprint(w, pageFoot)
}

// resolveDataset maps a request's dataset choice to a concrete
// dataset name: empty selects the first dataset, the auto entry runs
// database selection over every corpus's vocabulary (the one path
// that forces all engines to exist), anything else passes through.
// It returns "" when auto-selection finds no covering corpus. Both
// the HTML and JSON search paths route through it, so they always
// agree on which corpus serves a query.
func (s *server) resolveDataset(ds, query string) string {
	switch ds {
	case "":
		return s.order[0]
	case autoDataset:
		engines := make(map[string]*engine.Engine, len(s.datasets))
		for name, l := range s.datasets {
			engines[name] = l.get()
		}
		name, sel := engine.SelectEngine(engines, query)
		if sel == nil {
			return ""
		}
		return name
	default:
		return ds
	}
}

func (s *server) renderResults(w http.ResponseWriter, ds, query string, limit, offset int) {
	if ds == autoDataset {
		name := s.resolveDataset(ds, query)
		if name == "" {
			fmt.Fprintf(w, "<p>no dataset contains keywords of %s</p>", html.EscapeString(query))
			return
		}
		ds = name
		fmt.Fprintf(w, "<p>auto-selected dataset <b>%s</b></p>", html.EscapeString(ds))
	}
	eng := s.engineFor(ds)
	if eng == nil {
		fmt.Fprintf(w, "<p>unknown dataset %s</p>", html.EscapeString(ds))
		return
	}
	page, cleaned, err := eng.SearchCleanedPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
	if err != nil {
		fmt.Fprintf(w, "<p>search error: %s</p>", html.EscapeString(err.Error()))
		return
	}
	if joined := strings.Join(cleaned, " "); !sameKeywords(query, cleaned) {
		fmt.Fprintf(w, "<p>showing results for <b>%s</b></p>", html.EscapeString(joined))
	}
	if len(page.Results) > 0 && len(page.Results) < page.Total {
		fmt.Fprintf(w, `<h2>%d results (showing %d–%d)</h2>`,
			page.Total, page.Offset+1, page.Offset+len(page.Results))
	} else {
		fmt.Fprintf(w, `<h2>%d results</h2>`, page.Total)
	}
	fmt.Fprintf(w, `<form method="get" action="/compare">
<input type="hidden" name="dataset" value="%s">
<input type="hidden" name="q" value="%s">
table size bound L: <input name="L" value="10" size="3">
algorithm: <select name="alg"><option>multi-swap</option><option>single-swap</option><option>top-k</option></select>
<button>Compare selected</button><br>`,
		html.EscapeString(ds), html.EscapeString(query))
	// Checkbox and detail-link indices are positions in the full result
	// list, so selections made on any page resolve to the same results
	// the compare and snippet endpoints see.
	for i, res := range page.Results {
		idx := page.Offset + i
		detail := fmt.Sprintf("/result?dataset=%s&q=%s&idx=%d",
			url.QueryEscape(ds), url.QueryEscape(query), idx)
		fmt.Fprintf(w, `<div class="result"><label><input type="checkbox" name="sel" value="%d"></label> <a href="%s">%s</a> — %s</div>`,
			idx, detail, html.EscapeString(res.Label), html.EscapeString(xseek.DescribeResult(res, 4)))
	}
	fmt.Fprint(w, `</form>`)
	if limit > 0 {
		pageLink := func(off int, label string) {
			fmt.Fprintf(w, ` <a href="/?dataset=%s&q=%s&limit=%d&offset=%d">%s</a>`,
				url.QueryEscape(ds), url.QueryEscape(query), limit, off, label)
		}
		if page.Offset > 0 {
			prev := page.Offset - limit
			if prev < 0 {
				prev = 0
			}
			pageLink(prev, "&laquo; prev")
		}
		if page.Offset+len(page.Results) < page.Total {
			pageLink(page.Offset+limit, "next &raquo;")
		}
	}
}

// resolveEngine maps a dataset choice (including omitted and the auto
// entry) to its serving engine via resolveDataset, so every endpoint
// accepts the same dataset spellings the search paths do.
func (s *server) resolveEngine(ds, query string) (string, *engine.Engine, *httpError) {
	ds = s.resolveDataset(ds, query)
	if ds == "" {
		return "", nil, &httpError{http.StatusNotFound, "no dataset contains the query keywords"}
	}
	eng := s.engineFor(ds)
	if eng == nil {
		return "", nil, &httpError{http.StatusBadRequest, "unknown dataset"}
	}
	return ds, eng, nil
}

// resultInput is a fully validated single-result request. The HTML
// detail page and the JSON snippet endpoint both resolve through it,
// so an index obtained from either search path names the same result
// in both.
type resultInput struct {
	dataset string
	query   string
	cleaned []string // the spell-corrected keywords the results answer
	eng     *engine.Engine
	idx     int
	res     *xseek.Result
}

// resolveResult parses and validates the dataset/q/idx parameters,
// mirroring the search handlers' query resolution exactly.
func (s *server) resolveResult(r *http.Request) (*resultInput, *httpError) {
	in := &resultInput{query: r.FormValue("q")}
	var herr *httpError
	in.dataset, in.eng, herr = s.resolveEngine(r.FormValue("dataset"), in.query)
	if herr != nil {
		return nil, herr
	}
	results, cleaned, err := in.eng.SearchCleaned(in.query)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	in.cleaned = cleaned
	in.idx, err = strconv.Atoi(r.FormValue("idx"))
	if err != nil || in.idx < 0 || in.idx >= len(results) {
		return nil, &httpError{http.StatusBadRequest, "bad result index"}
	}
	in.res = results[in.idx]
	return in, nil
}

// handleResult shows one result's full subtree — the demo's "click the
// name of the result and the entire result will be shown".
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	in, herr := s.resolveResult(r)
	if herr != nil {
		http.Error(w, herr.msg, herr.status)
		return
	}
	fmt.Fprint(w, pageHead)
	fmt.Fprintf(w, "<h2>%s</h2><pre>%s</pre>", html.EscapeString(in.res.Label),
		html.EscapeString(xmltree.XMLString(in.res.Node)))
	fmt.Fprintf(w, `<p><a href="/?dataset=%s&q=%s">back to results</a></p>`,
		url.QueryEscape(in.dataset), url.QueryEscape(in.query))
	fmt.Fprint(w, pageFoot)
}

// maxSizeBound caps the user-supplied table size bound L. Accepting
// unbounded values would let a single request demand arbitrarily large
// tables (and pollute the DFS cache with them); bounds beyond this are
// clamped rather than rejected.
const maxSizeBound = 50

// httpError carries an HTTP status alongside a message through the
// request-resolution helpers shared by the HTML and JSON handlers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// compareInput is a fully validated comparison request. Both the HTML
// and the JSON compare handlers resolve through it, so checkbox/index
// selections bind to exactly the results the search path produced.
type compareInput struct {
	dataset  string
	query    string
	eng      *engine.Engine
	selected []*xseek.Result
	bound    int
	alg      core.Algorithm
}

// resolveCompare parses and validates the dataset/q/L/alg/sel request
// parameters. The search must mirror the search handlers' exactly so
// the selection indices resolve to the same results.
func (s *server) resolveCompare(r *http.Request) (*compareInput, *httpError) {
	in := &compareInput{query: r.FormValue("q")}
	var herr *httpError
	in.dataset, in.eng, herr = s.resolveEngine(r.FormValue("dataset"), in.query)
	if herr != nil {
		return nil, herr
	}
	results, _, err := in.eng.SearchCleaned(in.query)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	in.bound, err = strconv.Atoi(strings.TrimSpace(r.FormValue("L")))
	if err != nil || in.bound < 1 {
		in.bound = core.DefaultSizeBound
	}
	if in.bound > maxSizeBound {
		in.bound = maxSizeBound
	}
	in.alg = core.Algorithm(r.FormValue("alg"))
	if in.alg == "" {
		in.alg = core.AlgMultiSwap // same default as the facade's Compare
	}
	for _, v := range r.Form["sel"] {
		idx, err := strconv.Atoi(v)
		if err != nil || idx < 0 || idx >= len(results) {
			return nil, &httpError{http.StatusBadRequest, "bad selection"}
		}
		in.selected = append(in.selected, results[idx])
	}
	if len(in.selected) < 2 {
		return nil, &httpError{http.StatusBadRequest, "select at least two results to compare"}
	}
	return in, nil
}

// generate runs DFS generation for a validated comparison — the one
// post-resolution step, shared so the HTML and JSON paths cannot
// diverge in options or algorithm handling. Feature stats and the
// generated DFS set come from the engine's caches, so repeating a
// comparison does no re-extraction.
func (in *compareInput) generate() ([]*core.DFS, *httpError) {
	dfss := in.eng.Generate(in.alg, in.selected, core.Options{SizeBound: in.bound, Pad: true})
	if dfss == nil {
		return nil, &httpError{http.StatusBadRequest, "unknown algorithm"}
	}
	return dfss, nil
}

func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	in, herr := s.resolveCompare(r)
	if herr != nil {
		http.Error(w, herr.msg, herr.status)
		return
	}
	dfss, herr := in.generate()
	if herr != nil {
		http.Error(w, herr.msg, herr.status)
		return
	}
	fmt.Fprint(w, pageHead)
	fmt.Fprintf(w, "<h2>Comparison (%s, L=%d)</h2>", html.EscapeString(string(in.alg)), in.bound)
	if err := table.Build(dfss).WriteHTML(w); err != nil {
		return
	}
	fmt.Fprintf(w, "<p>total DoD = %d</p>", core.TotalDoD(dfss, core.DefaultThreshold))
	fmt.Fprintf(w, `<p><a href="/?dataset=%s&q=%s">back to results</a></p>`,
		url.QueryEscape(in.dataset), url.QueryEscape(in.query))
	fmt.Fprint(w, pageFoot)
}
