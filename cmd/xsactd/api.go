package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dewey"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/snippet"
	"repro/internal/table"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

// The /api/v1/* endpoints mirror the HTML UI over JSON so load
// generators and programmatic clients can drive the server: search and
// compare resolve through exactly the same engine calls (and the same
// request validation, for compare) as their HTML counterparts, so a
// result index obtained from /api/v1/search selects the same result
// the HTML checkbox with that value does.

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONError writes the uniform error envelope.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// apiResult is one search result in wire form. Index is the selection
// handle /api/v1/compare and /api/v1/snippet accept.
type apiResult struct {
	Index       int    `json:"index"`
	ID          string `json:"id"`
	Label       string `json:"label"`
	Description string `json:"description"`
	// Score carries the TF-IDF relevance score on rank=1 responses;
	// document-order responses omit it.
	Score *float64 `json:"score,omitempty"`
}

type searchResponse struct {
	Dataset string   `json:"dataset"`
	Query   string   `json:"query"`
	Cleaned []string `json:"cleaned"`
	Missing []string `json:"missing,omitempty"`
	// Paging envelope: Total counts the full result list, Offset is
	// the window's start within it, Returned = len(Results). Total is
	// -1 when the execution strategy stopped before counting every
	// result (exec=stream mid-list, or rank=1&accuracy=approx).
	Total    int         `json:"total"`
	Offset   int         `json:"offset"`
	Returned int         `json:"returned"`
	Results  []apiResult `json:"results"`
}

// apiSearch serves GET /api/v1/search?dataset=...&q=...[&limit=N&offset=M][&exec=...]
// — dataset may be omitted (first dataset) or "Any (auto-select)" for
// database selection; limit/offset select a window of the result list
// (limit 0 or absent returns everything). A query whose keywords match
// nothing is a well-formed 200 response with empty results and the
// missing keywords listed; an offset past the end is a well-formed
// empty page. Result indices are positions in the full list, so a
// paginated client passes them to compare/snippet unchanged.
//
// exec selects the execution strategy: "eager" or "auto" (the default)
// materializes the full result list and slices the window, reporting
// the exact total; "stream" pulls lazily from a resumable per-query
// cursor that stops at the window's end — the cheapest way to page
// forward through a huge result list — and reports total -1 until some
// window reaches the end of the results. Both spellings return the
// same results in the same order.
//
// rank=1 returns the relevance ordering instead of document order,
// with each result's TF-IDF score alongside. Ranked search picks its
// own execution strategy (small windows over broad queries run the
// score-bounded streamed pipeline), so it composes with accuracy=
// rather than exec=: "exact" (the default) reports the exact total,
// "approx" lets the engine stop scanning once no later result can
// enter the page — the page itself is still exact, but total may come
// back -1.
func (s *server) apiSearch(w http.ResponseWriter, r *http.Request) {
	query := r.FormValue("q")
	if query == "" {
		writeJSONError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	ranked := false
	switch r.FormValue("rank") {
	case "", "0", "false":
	case "1", "true":
		ranked = true
	default:
		writeJSONError(w, http.StatusBadRequest, "bad rank parameter (want 1 or 0)")
		return
	}
	acc := xseek.AccuracyExact
	switch r.FormValue("accuracy") {
	case "", "exact":
	case "approx":
		acc = xseek.AccuracyApprox
	default:
		writeJSONError(w, http.StatusBadRequest, "bad accuracy parameter (want exact or approx)")
		return
	}
	if !ranked && acc != xseek.AccuracyExact {
		writeJSONError(w, http.StatusBadRequest, "accuracy applies to ranked search; pass rank=1")
		return
	}
	if ranked && r.FormValue("exec") != "" && r.FormValue("exec") != "auto" {
		writeJSONError(w, http.StatusBadRequest, "ranked search picks its own execution; drop exec or use exec=auto")
		return
	}
	ds, eng, herr := s.resolveEngine(r.FormValue("dataset"), query)
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	limit, offset := pageParams(r)
	resp := searchResponse{Dataset: ds, Query: query, Results: []apiResult{}}
	var err error
	if ranked {
		var page *engine.RankedPage
		page, resp.Cleaned, err = eng.SearchCleanedRankedPage(query, xseek.SearchOptions{Limit: limit, Offset: offset, Accuracy: acc})
		if err == nil {
			resp.Total = page.Total
			resp.Offset = page.Offset
			resp.Returned = len(page.Results)
			for i, res := range page.Results {
				score := res.Score
				resp.Results = append(resp.Results, apiResult{
					Index:       page.Offset + i,
					ID:          res.Node.ID.String(),
					Label:       res.Label,
					Description: xseek.DescribeResult(res.Result, 4),
					Score:       &score,
				})
			}
		}
	} else {
		var page *engine.Page
		switch r.FormValue("exec") {
		case "", "auto", "eager":
			page, resp.Cleaned, err = eng.SearchCleanedPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
		case "stream":
			page, resp.Cleaned, err = eng.SearchCleanedStreamPage(query, xseek.SearchOptions{Limit: limit, Offset: offset})
		default:
			writeJSONError(w, http.StatusBadRequest, "bad exec parameter (want auto, eager, or stream)")
			return
		}
		if err == nil {
			resp.Total = page.Total
			resp.Offset = page.Offset
			resp.Returned = len(page.Results)
			for i, res := range page.Results {
				resp.Results = append(resp.Results, apiResult{
					Index:       page.Offset + i,
					ID:          res.Node.ID.String(),
					Label:       res.Label,
					Description: xseek.DescribeResult(res, 4),
				})
			}
		}
	}
	if err != nil {
		if errors.Is(err, dist.ErrOverloaded) {
			// Admission control shed this ranked query: load protection,
			// not failure — nothing changed; the caller should back off
			// briefly and retry.
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		var noMatch *index.NoMatchError
		if !errors.As(err, &noMatch) {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp.Missing = noMatch.Terms
	}
	writeJSON(w, http.StatusOK, resp)
}

type apiCellValue struct {
	Value string  `json:"value"`
	Rel   float64 `json:"rel"`
	Count int     `json:"count"`
}

type apiCell struct {
	Known  bool           `json:"known"`
	Values []apiCellValue `json:"values,omitempty"`
}

type apiRow struct {
	Entity    string    `json:"entity"`
	Attribute string    `json:"attribute"`
	Cells     []apiCell `json:"cells"`
}

type compareResponse struct {
	Dataset   string   `json:"dataset"`
	Query     string   `json:"query"`
	Algorithm string   `json:"algorithm"`
	SizeBound int      `json:"size_bound"`
	DoD       int      `json:"dod"`
	Labels    []string `json:"labels"`
	Rows      []apiRow `json:"rows"`
}

// apiCompare serves GET /api/v1/compare with the HTML compare page's
// parameters (dataset, q, sel indices, L, alg) and returns the
// comparison table as structured rows.
func (s *server) apiCompare(w http.ResponseWriter, r *http.Request) {
	in, herr := s.resolveCompare(r)
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	dfss, herr := in.generate()
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	tbl := table.Build(dfss)
	resp := compareResponse{
		Dataset:   in.dataset,
		Query:     in.query,
		Algorithm: string(in.alg),
		SizeBound: in.bound,
		DoD:       core.TotalDoD(dfss, core.DefaultThreshold),
		Labels:    tbl.Labels,
		Rows:      []apiRow{},
	}
	for _, row := range tbl.Rows {
		out := apiRow{Entity: row.Type.Entity, Attribute: row.Type.Attribute}
		for _, cell := range row.Cells {
			c := apiCell{Known: cell.Known}
			for _, v := range cell.Values {
				c.Values = append(c.Values, apiCellValue{Value: v.Value, Rel: v.Rel, Count: v.Count})
			}
			out.Cells = append(out.Cells, c)
		}
		resp.Rows = append(resp.Rows, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

type apiFeature struct {
	Entity    string `json:"entity"`
	Attribute string `json:"attribute"`
	Value     string `json:"value"`
}

type snippetResponse struct {
	Dataset  string       `json:"dataset"`
	Query    string       `json:"query"`
	Index    int          `json:"index"`
	Label    string       `json:"label"`
	Features []apiFeature `json:"features"`
}

// apiSnippet serves GET /api/v1/snippet?dataset=...&q=...&idx=N[&size=K]
// — the eXtract-style frequency snippet of one search result, the
// baseline XSACT's coordinated tables improve upon.
func (s *server) apiSnippet(w http.ResponseWriter, r *http.Request) {
	in, herr := s.resolveResult(r)
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	size, _ := strconv.Atoi(r.FormValue("size"))
	// Bias with the corrected keywords — the ones the result actually
	// answers — so a typo query still boosts the matching features.
	biasQuery := strings.Join(in.cleaned, " ")
	sn := snippet.Generate(in.eng.Stats(in.res.Node, in.res.Label), snippet.Options{Size: size, Query: biasQuery})
	resp := snippetResponse{Dataset: in.dataset, Query: in.query, Index: in.idx, Label: sn.Label, Features: []apiFeature{}}
	for _, f := range sn.Features {
		resp.Features = append(resp.Features, apiFeature{Entity: f.Entity, Attribute: f.Attribute, Value: f.Value})
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeEngine resolves a mutation's target dataset: empty selects the
// first dataset (matching the read paths' default), the auto-select
// entry is rejected (a write must name its corpus), anything else must
// be a known dataset. Unlike the read paths it never runs database
// selection, so a write can never land on a corpus chosen by keyword
// statistics.
func (s *server) writeEngine(ds string) (string, *engine.Engine, *httpError) {
	switch ds {
	case "":
		ds = s.order[0]
	case autoDataset:
		return "", nil, &httpError{http.StatusBadRequest, "writes require an explicit dataset"}
	}
	eng := s.engineFor(ds)
	if eng == nil {
		return "", nil, &httpError{http.StatusBadRequest, "unknown dataset"}
	}
	return ds, eng, nil
}

// documentRequest is the POST /api/v1/documents body.
type documentRequest struct {
	Dataset string `json:"dataset"`
	XML     string `json:"xml"`
}

// documentResponse answers both document mutations.
type documentResponse struct {
	Dataset string `json:"dataset"`
	ID      string `json:"id"`
	Label   string `json:"label,omitempty"`
	// Epoch and the pending backlog let ingest clients pace themselves
	// and decide when to trigger compaction explicitly.
	Epoch             uint64 `json:"epoch"`
	PendingDelta      int    `json:"pending_delta"`
	PendingTombstones int    `json:"pending_tombstones"`
}

// apiDocuments serves the live write path:
//
//	POST   /api/v1/documents            body {"dataset": ..., "xml": "<entity .../>"}
//	DELETE /api/v1/documents?dataset=...&id=...
//
// POST parses the XML fragment and appends it as a new top-level
// entity, immediately searchable; the response's id is the handle
// DELETE accepts (and matches the id field of /api/v1/search results).
// With -snapshot-dir set, each accepted write re-persists the engine in
// the journaled live layout, so restarts replay it.
func (s *server) apiDocuments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req documentRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if strings.TrimSpace(req.XML) == "" {
			writeJSONError(w, http.StatusBadRequest, "missing entity xml")
			return
		}
		ds, eng, herr := s.writeEngine(req.Dataset)
		if herr != nil {
			writeJSONError(w, herr.status, herr.msg)
			return
		}
		node, err := xmltree.ParseString(req.XML)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		id, err := eng.AddEntity(node)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.saveSnapshot(ds)
		m := eng.Metrics()
		writeJSON(w, http.StatusCreated, documentResponse{
			Dataset: ds, ID: id.String(), Label: xseek.LabelFor(node),
			Epoch: m.Epoch, PendingDelta: m.PendingDelta, PendingTombstones: m.PendingTombstones,
		})
	case http.MethodDelete:
		ds, eng, herr := s.writeEngine(r.FormValue("dataset"))
		if herr != nil {
			writeJSONError(w, herr.status, herr.msg)
			return
		}
		idStr := r.FormValue("id")
		id, err := dewey.Parse(idStr)
		if err != nil || len(id) != 1 {
			// Malformed or non-top-level IDs are bad requests; only a
			// well-formed ID that names no live entity is a 404 (the
			// "stale handle, re-resolve via search" signal).
			writeJSONError(w, http.StatusBadRequest, "bad entity id "+idStr)
			return
		}
		if err := eng.RemoveEntity(id); err != nil {
			writeJSONError(w, http.StatusNotFound, err.Error())
			return
		}
		s.saveSnapshot(ds)
		m := eng.Metrics()
		writeJSON(w, http.StatusOK, documentResponse{
			Dataset: ds, ID: idStr,
			Epoch: m.Epoch, PendingDelta: m.PendingDelta, PendingTombstones: m.PendingTombstones,
		})
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "use POST to add or DELETE to remove")
	}
}

// compactResponse answers POST /api/v1/compact.
type compactResponse struct {
	Dataset     string `json:"dataset"`
	Epoch       uint64 `json:"epoch"`
	Compactions int64  `json:"compactions"`
}

// apiCompact serves POST /api/v1/compact?dataset=... — an explicit
// compaction trigger for operators and ingest pipelines (compaction
// also runs automatically when -compact-every is set). Compacting a
// dataset with no pending writes is a cheap no-op.
func (s *server) apiCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	ds, eng, herr := s.writeEngine(r.FormValue("dataset"))
	if herr != nil {
		writeJSONError(w, herr.status, herr.msg)
		return
	}
	if err := eng.Compact(); err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.saveSnapshot(ds)
	m := eng.Metrics()
	writeJSON(w, http.StatusOK, compactResponse{Dataset: ds, Epoch: m.Epoch, Compactions: m.Compactions})
}

// datasetMetrics reports one dataset's serving state. Engines are
// built lazily, so unbuilt datasets show built=false instead of being
// forced into existence by a monitoring probe.
type datasetMetrics struct {
	Built  bool            `json:"built"`
	Engine *engine.Metrics `json:"engine,omitempty"`
	Index  *index.Stats    `json:"index,omitempty"`
}

type metricsResponse struct {
	Datasets map[string]datasetMetrics `json:"datasets"`
}

// apiMetrics serves GET /api/v1/metrics: per-dataset cache counters
// and index statistics for every engine built so far.
func (s *server) apiMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{Datasets: make(map[string]datasetMetrics, len(s.datasets))}
	for name, l := range s.datasets {
		dm := datasetMetrics{}
		if eng := l.peek(); eng != nil {
			dm.Built = true
			m := eng.Metrics()
			st := eng.IndexStats()
			dm.Engine = &m
			dm.Index = &st
		}
		resp.Datasets[name] = dm
	}
	writeJSON(w, http.StatusOK, resp)
}
