package main

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// The -pprof flag exposes Go's profiling endpoints on a side listener,
// deliberately separate from the serving address: profiles are an
// operator concern and should never be reachable through whatever
// ingress fronts the demo. The handler carries the standard
// /debug/pprof/ tree plus a small /debug/memstats JSON snapshot for
// dashboards that just want allocation and GC gauges without a full
// heap profile.

// memstatsResponse is the /debug/memstats body: the handful of
// runtime.MemStats gauges worth watching while driving load —
// allocation footprint, cumulative churn, and GC pressure.
type memstatsResponse struct {
	HeapAlloc    uint64  `json:"heap_alloc"`
	HeapSys      uint64  `json:"heap_sys"`
	HeapObjects  uint64  `json:"heap_objects"`
	TotalAlloc   uint64  `json:"total_alloc"`
	Mallocs      uint64  `json:"mallocs"`
	Frees        uint64  `json:"frees"`
	NumGC        uint32  `json:"num_gc"`
	PauseTotalNs uint64  `json:"pause_total_ns"`
	GCCPUPercent float64 `json:"gc_cpu_percent"`
	NumGoroutine int     `json:"num_goroutine"`
}

// profilingHandler builds the side listener's mux: the net/http/pprof
// tree under /debug/pprof/ and the memstats snapshot under
// /debug/memstats.
func profilingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/memstats", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		writeJSON(w, http.StatusOK, memstatsResponse{
			HeapAlloc:    ms.HeapAlloc,
			HeapSys:      ms.HeapSys,
			HeapObjects:  ms.HeapObjects,
			TotalAlloc:   ms.TotalAlloc,
			Mallocs:      ms.Mallocs,
			Frees:        ms.Frees,
			NumGC:        ms.NumGC,
			PauseTotalNs: ms.PauseTotalNs,
			GCCPUPercent: ms.GCCPUFraction * 100,
			NumGoroutine: runtime.NumGoroutine(),
		})
	})
	return mux
}
