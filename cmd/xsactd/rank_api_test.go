package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAPISearchRanked: rank=1 serves the score-ordered page with a
// score on every result, the same envelope shape as doc-order search,
// and scores that never increase down the page. Doc-order responses
// must keep omitting the score field.
func TestAPISearchRanked(t *testing.T) {
	srv := testServer(t)
	base := srv.URL + "/api/v1/search?dataset=Product+Reviews&q=tomtom+gps"

	code, body := get(t, base+"&rank=1&limit=5")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	ranked := decodeJSON[searchResponse](t, body)
	if len(ranked.Results) == 0 || ranked.Total <= 0 {
		t.Fatalf("ranked response = %+v", ranked)
	}
	var prev float64
	for i, r := range ranked.Results {
		if r.Score == nil {
			t.Fatalf("ranked result %d has no score: %+v", i, r)
		}
		if *r.Score <= 0 {
			t.Fatalf("ranked result %d score = %v, want > 0", i, *r.Score)
		}
		if i > 0 && *r.Score > prev {
			t.Fatalf("ranked scores increase at %d: %v after %v", i, *r.Score, prev)
		}
		prev = *r.Score
		if r.Index != i || r.ID == "" || r.Label == "" {
			t.Fatalf("ranked result %d malformed: %+v", i, r)
		}
	}

	// Doc-order search stays score-free.
	_, body = get(t, base+"&limit=2")
	for _, r := range decodeJSON[searchResponse](t, body).Results {
		if r.Score != nil {
			t.Fatalf("doc-order result carries a score: %+v", r)
		}
	}

	// Typo cleaning applies on the ranked path too.
	_, body = get(t, srv.URL+"/api/v1/search?dataset=Product+Reviews&q=tomtim+gps&rank=1&limit=3")
	cleaned := decodeJSON[searchResponse](t, body)
	if len(cleaned.Cleaned) != 2 || cleaned.Cleaned[0] != "tomtom" {
		t.Fatalf("ranked path skipped query cleaning: %v", cleaned.Cleaned)
	}

	// Ranked paging envelope: a window into the same ordering.
	_, body = get(t, base+"&rank=1&limit=2&offset=1")
	page := decodeJSON[searchResponse](t, body)
	if page.Offset != 1 || page.Returned != len(page.Results) {
		t.Fatalf("ranked page envelope = %+v", page)
	}
	if len(page.Results) > 0 && len(ranked.Results) > 1 {
		if page.Results[0].ID != ranked.Results[1].ID {
			t.Fatalf("ranked offset window diverges: %q, want %q", page.Results[0].ID, ranked.Results[1].ID)
		}
	}
}

// TestAPISearchRankedApprox: accuracy=approx is accepted on ranked
// requests, serves the identical page, and may only degrade the total
// to -1.
func TestAPISearchRankedApprox(t *testing.T) {
	srv := testServer(t)
	base := srv.URL + "/api/v1/search?dataset=Product+Reviews&q=tomtom+gps&rank=1&limit=3"
	_, exactBody := get(t, base)
	exact := decodeJSON[searchResponse](t, exactBody)
	if exact.Total < 0 {
		t.Fatalf("exact ranked total = %d", exact.Total)
	}

	code, body := get(t, base+"&accuracy=approx")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	approx := decodeJSON[searchResponse](t, body)
	if approx.Total != exact.Total && approx.Total != -1 {
		t.Fatalf("approx total = %d, want %d or -1", approx.Total, exact.Total)
	}
	if len(approx.Results) != len(exact.Results) {
		t.Fatalf("approx page has %d results, exact %d", len(approx.Results), len(exact.Results))
	}
	for i := range exact.Results {
		a, x := approx.Results[i], exact.Results[i]
		if a.ID != x.ID || a.Label != x.Label || a.Score == nil || x.Score == nil || *a.Score != *x.Score {
			t.Fatalf("approx result %d = %+v, exact %+v", i, a, x)
		}
	}

	// accuracy=exact is the explicit spelling of the default.
	_, body = get(t, base+"&accuracy=exact")
	if resp := decodeJSON[searchResponse](t, body); resp.Total != exact.Total {
		t.Fatalf("accuracy=exact total = %d, want %d", resp.Total, exact.Total)
	}

	// The WAND counters surface in the metrics endpoint.
	_, body = get(t, srv.URL+"/api/v1/metrics")
	for _, field := range []string{"ranked_wand", "wand_pruned", "blocks_skipped"} {
		if !strings.Contains(body, `"`+field+`"`) {
			t.Fatalf("metrics missing %q: %s", field, body)
		}
	}
}

// TestAPISearchRankedErrors: malformed rank/accuracy values and
// contradictory parameter combinations are rejected up front with
// JSON-enveloped 400s.
func TestAPISearchRankedErrors(t *testing.T) {
	srv := testServer(t)
	base := srv.URL + "/api/v1/search?dataset=Movies&q=thriller"
	for _, tc := range []string{
		"&rank=maybe",
		"&rank=2",
		"&rank=1&accuracy=fast",
		"&accuracy=approx",    // accuracy without rank=1
		"&rank=1&exec=stream", // ranked search picks its own execution
		"&rank=1&exec=eager",
	} {
		code, body := get(t, base+tc)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400: %s", tc, code, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: error not JSON-enveloped: %s", tc, body)
		}
	}

	// rank=0 and exec compose fine; rank=1 with exec=auto is allowed.
	for _, tc := range []string{"&rank=0&exec=stream", "&rank=1&exec=auto", "&rank=1&accuracy="} {
		if code, body := get(t, base+tc); code != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200: %s", tc, code, body)
		}
	}

	// No-match keeps the 200 + missing-terms envelope on the ranked path.
	code, body := get(t, srv.URL+"/api/v1/search?dataset=Movies&q=zzznope&rank=1")
	if code != http.StatusOK {
		t.Fatalf("ranked no-match: status = %d: %s", code, body)
	}
	if resp := decodeJSON[searchResponse](t, body); len(resp.Missing) == 0 || len(resp.Results) != 0 {
		t.Fatalf("ranked no-match response = %+v", resp)
	}
}

// TestProfilingHandler: the side listener's mux serves the pprof index
// and the memstats JSON snapshot without touching the main API routes.
func TestProfilingHandler(t *testing.T) {
	srv := httptest.NewServer(profilingHandler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %.120s", code, body)
	}
	code, body = get(t, srv.URL+"/debug/memstats")
	if code != http.StatusOK {
		t.Fatalf("memstats: status = %d: %s", code, body)
	}
	ms := decodeJSON[memstatsResponse](t, body)
	if ms.HeapAlloc == 0 || ms.HeapSys == 0 || ms.NumGoroutine <= 0 {
		t.Fatalf("memstats implausible: %+v", ms)
	}

	// The main API mux must NOT expose the profiling surface.
	s, err := newServer(1, "", 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(s.routes())
	defer api.Close()
	if code, _ := get(t, api.URL+"/debug/pprof/"); code == http.StatusOK {
		t.Fatal("profiling endpoints leaked onto the main listener")
	}
}
