package main

// The multi-process equivalence run: real `xsactd -shard-server`
// OS processes built from this package, a coordinator dialed over
// their TCP endpoints, and bit-identity asserted against the
// in-process sharded engine — queries and a live write.

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func procResultKey(rs []*xseek.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.Node.ID.String() + "=" + r.Match.ID.String() + "=" + r.Label
	}
	return strings.Join(parts, ";")
}

func procRankedKey(rs []*xseek.RankedResult) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s@%016x", r.Node.ID, math.Float64bits(r.Score))
	}
	return strings.Join(parts, ";")
}

// corpusTerms pulls a few real index terms out of the corpus text, so
// the cross-process queries actually have results to disagree on.
func corpusTerms(root *xmltree.Node, n int) []string {
	seen := map[string]bool{}
	var out []string
	root.Walk(func(m *xmltree.Node) bool {
		if len(out) >= n {
			return false
		}
		if m.Kind != xmltree.Text {
			return true
		}
		for _, w := range strings.Fields(strings.ToLower(m.Text)) {
			w = strings.Trim(w, ".,;:!?\"'()")
			if len(w) < 4 || seen[w] {
				continue
			}
			ok := true
			for _, r := range w {
				if r < 'a' || r > 'z' {
					ok = false
					break
				}
			}
			if ok {
				seen[w] = true
				out = append(out, w)
				if len(out) >= n {
					return false
				}
			}
		}
		return true
	})
	return out
}

// freeAddr reserves an ephemeral localhost port and releases it for
// the child process to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// buildXsactd compiles the binary once per test into its temp dir.
func buildXsactd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "xsactd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building xsactd: %v\n%s", err, out)
	}
	return bin
}

// startShardProc launches one `xsactd -shard-server` process and
// registers its teardown. Extra args (e.g. -peer) are appended.
func startShardProc(t *testing.T, bin, addr string, shardID, shardCount int, seed int64, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{"-shard-server",
		"-shard-id", fmt.Sprint(shardID), "-shard-count", fmt.Sprint(shardCount),
		"-addr", addr, "-seed", fmt.Sprint(seed)}
	cmd := exec.Command(bin, append(args, extra...)...)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard %d at %s: %v", shardID, addr, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// awaitShardReady polls a leg's info endpoint until the corpus is
// bootstrapped with the expected identity. A fresh leg reports
// ready=false until a coordinator installs the ranking, so readiness
// itself is only demanded in the restored-from-peer case (wantEpoch
// non-zero): a snapshot carries the ranking, and the restored leg must
// already be serving at exactly that epoch.
func awaitShardReady(t *testing.T, ep, corpus string, shardID, shardCount int, wantEpoch uint64) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(60 * time.Second)
	var lastErr error
	for {
		resp, err := client.Get(ep + "/shard/v1/info?corpus=" + strings.ReplaceAll(corpus, " ", "+"))
		lastErr = err
		if err == nil {
			var info dist.InfoResponse
			ok := resp.StatusCode == http.StatusOK &&
				json.NewDecoder(resp.Body).Decode(&info) == nil &&
				info.ShardID == shardID && info.Shards == shardCount &&
				(wantEpoch == 0 || (info.Ready && info.Epoch == wantEpoch))
			resp.Body.Close()
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("leg %d at %s never became ready: %v", shardID, ep, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestShardServerProcesses is the true multi-process leg of the
// equivalence harness: the httptest-based tests in internal/dist share
// an address space with the coordinator; this one crosses real process
// boundaries through the compiled binary.
func TestShardServerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process: builds and launches the xsactd binary")
	}
	const k = 2
	const seed = 1

	bin := buildXsactd(t)
	endpoints := make([]string, k)
	for g := 0; g < k; g++ {
		addr := freeAddr(t)
		endpoints[g] = "http://" + addr
		startShardProc(t, bin, addr, g, k, seed)
	}
	for g, ep := range endpoints {
		awaitShardReady(t, ep, "Product Reviews", g, k, 0)
	}

	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed})
	co, err := dist.Dial(endpoints, "Product Reviews", root, dist.Config{
		Timeout: 10 * time.Second, Retries: 1,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ref := update.WrapSharded(shard.Build(dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}), k))

	check := func(query, ctx string) {
		t.Helper()
		want, wantErr := ref.Search(query)
		got, gotErr := co.Search(query)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s query %q: err %v vs %v", ctx, query, gotErr, wantErr)
		}
		if procResultKey(got) != procResultKey(want) {
			t.Fatalf("%s query %q: results diverge\n got  %.200s\n want %.200s",
				ctx, query, procResultKey(got), procResultKey(want))
		}
		if wantErr != nil {
			return
		}
		for _, opts := range []xseek.SearchOptions{{Limit: 1}, {Limit: 5}, {Limit: 3, Offset: 2}} {
			wantP, wantT, werr := ref.SearchRankedPageStream(query, opts)
			gotP, gotT, gerr := co.SearchRankedPageStream(query, opts)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s query %q page %+v: err %v vs %v", ctx, query, opts, gerr, werr)
			}
			if gotT != wantT || procRankedKey(gotP) != procRankedKey(wantP) {
				t.Fatalf("%s query %q page %+v:\n got  total=%d %s\n want total=%d %s",
					ctx, query, opts, gotT, procRankedKey(gotP), wantT, procRankedKey(wantP))
			}
		}
	}

	terms := corpusTerms(root, 4)
	if len(terms) < 2 {
		t.Fatalf("corpus yielded too few query terms: %v", terms)
	}
	for _, q := range terms {
		check(q, "cold")
	}
	check(terms[0]+" "+terms[1], "cold multi-term")

	// One live write through the real processes.
	frag := fmt.Sprintf("<review><text>%s %s freshproc</text></review>", terms[0], terms[1])
	wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("ref add: %v", err)
	}
	gotID, err := co.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("dist add: %v", err)
	}
	if gotID.String() != wantID.String() {
		t.Fatalf("add ID %s vs %s", gotID, wantID)
	}
	if got, want := co.Epoch(), ref.Epoch(); got != want {
		t.Fatalf("epoch %d vs %d after add", got, want)
	}
	check("freshproc", "after add")
	check(terms[0], "after add")
}

// TestShardServerReplicaFailoverProcesses is the multi-process leg of
// the replication story: 2 shard groups x 2 replicas as real xsactd
// processes, a replicated coordinator dialed over them, then a replica
// killed mid-run (reads must fail over, still bit-identical) and a
// replacement started with -peer (it must self-heal from the live
// replica's snapshot, rejoin at the current epoch, and carry the data
// on its own once the original survivor is killed too).
func TestShardServerReplicaFailoverProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process: builds and launches the xsactd binary")
	}
	const k = 2
	const reps = 2
	const seed = 1
	const corpus = "Product Reviews"

	bin := buildXsactd(t)
	cmds := make([][]*exec.Cmd, k)
	endpoints := make([][]string, k)
	var flat []string
	for g := 0; g < k; g++ {
		cmds[g] = make([]*exec.Cmd, reps)
		endpoints[g] = make([]string, reps)
		for r := 0; r < reps; r++ {
			addr := freeAddr(t)
			endpoints[g][r] = "http://" + addr
			flat = append(flat, endpoints[g][r])
			cmds[g][r] = startShardProc(t, bin, addr, g, k, seed)
		}
	}
	for g := 0; g < k; g++ {
		for r := 0; r < reps; r++ {
			awaitShardReady(t, endpoints[g][r], corpus, g, k, 0)
		}
	}

	groups, err := dist.GroupEndpoints(flat, reps)
	if err != nil {
		t.Fatalf("GroupEndpoints: %v", err)
	}
	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed})
	co, err := dist.DialReplicas(groups, corpus, root, dist.Config{
		Timeout: 10 * time.Second, Retries: 1,
	})
	if err != nil {
		t.Fatalf("DialReplicas: %v", err)
	}
	ref := update.WrapSharded(shard.Build(dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}), k))

	check := func(query, ctx string) {
		t.Helper()
		want, wantErr := ref.Search(query)
		got, gotErr := co.Search(query)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s query %q: err %v vs %v", ctx, query, gotErr, wantErr)
		}
		if procResultKey(got) != procResultKey(want) {
			t.Fatalf("%s query %q: results diverge\n got  %.200s\n want %.200s",
				ctx, query, procResultKey(got), procResultKey(want))
		}
		if wantErr != nil {
			return
		}
		opts := xseek.SearchOptions{Limit: 5}
		wantP, wantT, werr := ref.SearchRankedPageStream(query, opts)
		gotP, gotT, gerr := co.SearchRankedPageStream(query, opts)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s query %q ranked: err %v vs %v", ctx, query, gerr, werr)
		}
		if gotT != wantT || procRankedKey(gotP) != procRankedKey(wantP) {
			t.Fatalf("%s query %q ranked:\n got  total=%d %s\n want total=%d %s",
				ctx, query, gotT, procRankedKey(gotP), wantT, procRankedKey(wantP))
		}
	}

	terms := corpusTerms(root, 3)
	if len(terms) < 2 {
		t.Fatalf("corpus yielded too few query terms: %v", terms)
	}
	for _, q := range terms {
		check(q, "cold")
	}

	// A write while every replica is alive: broadcast must land on all
	// four legs.
	frag := fmt.Sprintf("<review><text>%s %s replproc</text></review>", terms[0], terms[1])
	wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("ref add: %v", err)
	}
	gotID, err := co.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("dist add: %v", err)
	}
	if gotID.String() != wantID.String() {
		t.Fatalf("add ID %s vs %s", gotID, wantID)
	}
	check("replproc", "after add")

	// Kill group 0's replica 0. Reads must fail over to the surviving
	// replica with no change in answers.
	cmds[0][0].Process.Kill()
	cmds[0][0].Wait()
	for _, q := range terms {
		check(q, "one replica down")
	}
	check("replproc", "one replica down")
	if _, _, _, _, failovers, _ := co.DistCounters(); failovers == 0 {
		t.Fatal("no failovers recorded with a replica down")
	}

	// Self-healing: a replacement process restores group 0's state from
	// the surviving replica's snapshot and rejoins at the live epoch.
	newAddr := freeAddr(t)
	startShardProc(t, bin, newAddr, 0, k, seed, "-peer", endpoints[0][1])
	awaitShardReady(t, "http://"+newAddr, corpus, 0, k, co.Epoch())
	co.SetReplicaEndpoint(0, 0, "http://"+newAddr)
	for _, q := range terms {
		check(q, "replacement joined")
	}

	// A write now broadcasts through the replacement too — proof it is
	// a first-class replica, not a stale bystander.
	frag2 := fmt.Sprintf("<review><text>%s healedproc</text></review>", terms[1])
	if _, err := ref.AddEntity(xmltree.MustParseString(frag2)); err != nil {
		t.Fatalf("ref add 2: %v", err)
	}
	if _, err := co.AddEntity(xmltree.MustParseString(frag2)); err != nil {
		t.Fatalf("dist add 2: %v", err)
	}
	if got, want := co.Epoch(), ref.Epoch(); got != want {
		t.Fatalf("epoch %d vs %d after second add", got, want)
	}
	check("healedproc", "after second add")

	// Kill the original survivor: only the peer-healed replacement now
	// holds group 0, so matching answers prove the snapshot transfer
	// really restored the corpus (writes included).
	cmds[0][1].Process.Kill()
	cmds[0][1].Wait()
	for _, q := range terms {
		check(q, "replacement alone")
	}
	check("replproc", "replacement alone")
	check("healedproc", "replacement alone")
}
