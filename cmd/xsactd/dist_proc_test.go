package main

// The multi-process equivalence run: real `xsactd -shard-server`
// OS processes built from this package, a coordinator dialed over
// their TCP endpoints, and bit-identity asserted against the
// in-process sharded engine — queries and a live write.

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xseek"
)

func procResultKey(rs []*xseek.Result) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.Node.ID.String() + "=" + r.Match.ID.String() + "=" + r.Label
	}
	return strings.Join(parts, ";")
}

func procRankedKey(rs []*xseek.RankedResult) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%s@%016x", r.Node.ID, math.Float64bits(r.Score))
	}
	return strings.Join(parts, ";")
}

// corpusTerms pulls a few real index terms out of the corpus text, so
// the cross-process queries actually have results to disagree on.
func corpusTerms(root *xmltree.Node, n int) []string {
	seen := map[string]bool{}
	var out []string
	root.Walk(func(m *xmltree.Node) bool {
		if len(out) >= n {
			return false
		}
		if m.Kind != xmltree.Text {
			return true
		}
		for _, w := range strings.Fields(strings.ToLower(m.Text)) {
			w = strings.Trim(w, ".,;:!?\"'()")
			if len(w) < 4 || seen[w] {
				continue
			}
			ok := true
			for _, r := range w {
				if r < 'a' || r > 'z' {
					ok = false
					break
				}
			}
			if ok {
				seen[w] = true
				out = append(out, w)
				if len(out) >= n {
					return false
				}
			}
		}
		return true
	})
	return out
}

// freeAddr reserves an ephemeral localhost port and releases it for
// the child process to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestShardServerProcesses is the true multi-process leg of the
// equivalence harness: the httptest-based tests in internal/dist share
// an address space with the coordinator; this one crosses real process
// boundaries through the compiled binary.
func TestShardServerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process: builds and launches the xsactd binary")
	}
	const k = 2
	const seed = 1

	bin := filepath.Join(t.TempDir(), "xsactd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building xsactd: %v\n%s", err, out)
	}

	endpoints := make([]string, k)
	for g := 0; g < k; g++ {
		addr := freeAddr(t)
		endpoints[g] = "http://" + addr
		cmd := exec.Command(bin, "-shard-server",
			"-shard-id", fmt.Sprint(g), "-shard-count", fmt.Sprint(k),
			"-addr", addr, "-seed", fmt.Sprint(seed))
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting leg %d: %v", g, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	// Wait for every leg to finish bootstrapping its corpora.
	client := &http.Client{Timeout: time.Second}
	for g, ep := range endpoints {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := client.Get(ep + "/shard/v1/info?corpus=Product+Reviews")
			if err == nil {
				var info struct {
					ShardID int `json:"shardId"`
					Shards  int `json:"shards"`
				}
				ok := resp.StatusCode == http.StatusOK &&
					json.NewDecoder(resp.Body).Decode(&info) == nil &&
					info.ShardID == g && info.Shards == k
				resp.Body.Close()
				if ok {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("leg %d at %s never became ready: %v", g, ep, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	root := dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed})
	co, err := dist.Dial(endpoints, "Product Reviews", root, dist.Config{
		Timeout: 10 * time.Second, Retries: 1,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	ref := update.WrapSharded(shard.Build(dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed}), k))

	check := func(query, ctx string) {
		t.Helper()
		want, wantErr := ref.Search(query)
		got, gotErr := co.Search(query)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s query %q: err %v vs %v", ctx, query, gotErr, wantErr)
		}
		if procResultKey(got) != procResultKey(want) {
			t.Fatalf("%s query %q: results diverge\n got  %.200s\n want %.200s",
				ctx, query, procResultKey(got), procResultKey(want))
		}
		if wantErr != nil {
			return
		}
		for _, opts := range []xseek.SearchOptions{{Limit: 1}, {Limit: 5}, {Limit: 3, Offset: 2}} {
			wantP, wantT, werr := ref.SearchRankedPageStream(query, opts)
			gotP, gotT, gerr := co.SearchRankedPageStream(query, opts)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s query %q page %+v: err %v vs %v", ctx, query, opts, gerr, werr)
			}
			if gotT != wantT || procRankedKey(gotP) != procRankedKey(wantP) {
				t.Fatalf("%s query %q page %+v:\n got  total=%d %s\n want total=%d %s",
					ctx, query, opts, gotT, procRankedKey(gotP), wantT, procRankedKey(wantP))
			}
		}
	}

	terms := corpusTerms(root, 4)
	if len(terms) < 2 {
		t.Fatalf("corpus yielded too few query terms: %v", terms)
	}
	for _, q := range terms {
		check(q, "cold")
	}
	check(terms[0]+" "+terms[1], "cold multi-term")

	// One live write through the real processes.
	frag := fmt.Sprintf("<review><text>%s %s freshproc</text></review>", terms[0], terms[1])
	wantID, err := ref.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("ref add: %v", err)
	}
	gotID, err := co.AddEntity(xmltree.MustParseString(frag))
	if err != nil {
		t.Fatalf("dist add: %v", err)
	}
	if gotID.String() != wantID.String() {
		t.Fatalf("add ID %s vs %s", gotID, wantID)
	}
	if got, want := co.Epoch(), ref.Epoch(); got != want {
		t.Fatalf("epoch %d vs %d after add", got, want)
	}
	check("freshproc", "after add")
	check(terms[0], "after add")
}
