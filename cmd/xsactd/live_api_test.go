package main

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/persist"
)

// request performs an arbitrary-method HTTP call with an optional body.
func request(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func searchTotal(t *testing.T, srvURL, dataset, q string) int {
	t.Helper()
	code, body := get(t, srvURL+"/api/v1/search?dataset="+url.QueryEscape(dataset)+"&q="+url.QueryEscape(q))
	if code != http.StatusOK {
		t.Fatalf("search status = %d: %s", code, body)
	}
	return decodeJSON[searchResponse](t, body).Total
}

// TestAPIDocumentsLifecycle drives the live write path end to end over
// HTTP: add an entity, see it in search, remove it, see it gone,
// compact, and watch the metrics move.
func TestAPIDocumentsLifecycle(t *testing.T) {
	srv := testServer(t)
	const ds = "Product Reviews"

	before := searchTotal(t, srv.URL, ds, "glarpnox")
	if before != 0 {
		t.Fatalf("made-up keyword already matches %d results", before)
	}

	code, body := request(t, http.MethodPost, srv.URL+"/api/v1/documents",
		`{"dataset": "Product Reviews", "xml": "<product><name>Glarpnox 9000</name><category>gps</category></product>"}`)
	if code != http.StatusCreated {
		t.Fatalf("POST status = %d: %s", code, body)
	}
	added := decodeJSON[documentResponse](t, body)
	if added.ID == "" || added.Label != "Glarpnox 9000" || added.PendingDelta != 1 {
		t.Fatalf("POST response = %+v", added)
	}
	if got := searchTotal(t, srv.URL, ds, "glarpnox"); got != 1 {
		t.Fatalf("added entity not searchable: total = %d", got)
	}

	// Metrics expose the live counters.
	_, mbody := get(t, srv.URL+"/api/v1/metrics")
	if !strings.Contains(mbody, `"updates":1`) || !strings.Contains(mbody, `"pending_delta":1`) {
		t.Fatalf("metrics missing live counters: %s", mbody)
	}

	code, body = request(t, http.MethodDelete,
		srv.URL+"/api/v1/documents?dataset="+url.QueryEscape(ds)+"&id="+url.QueryEscape(added.ID), "")
	if code != http.StatusOK {
		t.Fatalf("DELETE status = %d: %s", code, body)
	}
	removed := decodeJSON[documentResponse](t, body)
	if removed.PendingTombstones != 1 {
		t.Fatalf("DELETE response = %+v", removed)
	}
	if got := searchTotal(t, srv.URL, ds, "glarpnox"); got != 0 {
		t.Fatalf("removed entity still searchable: total = %d", got)
	}

	code, body = request(t, http.MethodPost, srv.URL+"/api/v1/compact?dataset="+url.QueryEscape(ds), "")
	if code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", code, body)
	}
	compacted := decodeJSON[compactResponse](t, body)
	if compacted.Compactions < 1 {
		t.Fatalf("compact response = %+v", compacted)
	}
	_, mbody = get(t, srv.URL+"/api/v1/metrics")
	if !strings.Contains(mbody, `"pending_delta":0`) || !strings.Contains(mbody, `"pending_tombstones":0`) {
		t.Fatalf("backlog not cleared after compaction: %s", mbody)
	}
	if got := searchTotal(t, srv.URL, ds, "glarpnox"); got != 0 {
		t.Fatalf("compaction resurrected the entity: total = %d", got)
	}
}

func TestAPIDocumentsValidation(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"bad json", http.MethodPost, "/api/v1/documents", "{", http.StatusBadRequest},
		{"missing xml", http.MethodPost, "/api/v1/documents", `{"dataset": "Movies"}`, http.StatusBadRequest},
		{"bad xml", http.MethodPost, "/api/v1/documents", `{"dataset": "Movies", "xml": "<broken"}`, http.StatusBadRequest},
		{"unknown dataset", http.MethodPost, "/api/v1/documents", `{"dataset": "Nope", "xml": "<p/>"}`, http.StatusBadRequest},
		{"auto dataset write", http.MethodPost, "/api/v1/documents", `{"dataset": "` + autoDataset + `", "xml": "<p/>"}`, http.StatusBadRequest},
		{"bad id", http.MethodDelete, "/api/v1/documents?dataset=Movies&id=bogus", "", http.StatusBadRequest},
		{"absent id", http.MethodDelete, "/api/v1/documents?dataset=Movies&id=9999", "", http.StatusNotFound},
		{"method", http.MethodPut, "/api/v1/documents", "", http.StatusMethodNotAllowed},
		{"compact method", http.MethodGet, "/api/v1/compact", "", http.StatusMethodNotAllowed},
	} {
		code, body := request(t, tc.method, srv.URL+tc.url, tc.body)
		if code != tc.want {
			t.Fatalf("%s: status = %d, want %d (%s)", tc.name, code, tc.want, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: error not JSON-enveloped: %s", tc.name, body)
		}
	}
}

// TestServerWritesSurviveRestart proves the journaled snapshot path
// through the real server: writes accepted by one server are replayed
// by the next one sharing its snapshot directory.
func TestServerWritesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	const ds = "Movies"

	s1, err := newServer(1, dir, 1, 0, persist.CompactFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := newTestServerFor(t, s1)
	// Force the engine (and its initial snapshot) into existence first.
	searchTotal(t, srv1.URL, ds, "vampire")
	code, body := request(t, http.MethodPost, srv1.URL+"/api/v1/documents",
		`{"dataset": "Movies", "xml": "<movie><title>Crimson Peak Redux</title><genre>glarphorror</genre></movie>"}`)
	if code != http.StatusCreated {
		t.Fatalf("POST status = %d: %s", code, body)
	}
	if got := searchTotal(t, srv1.URL, ds, "glarphorror"); got != 1 {
		t.Fatalf("entity not searchable on first server: %d", got)
	}

	s2, err := newServer(1, dir, 1, 0, persist.CompactFormatVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newTestServerFor(t, s2)
	if got := searchTotal(t, srv2.URL, ds, "glarphorror"); got != 1 {
		t.Fatalf("restart lost the write: %d results", got)
	}
}
