package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/xmltree"
)

// newTestServerFor serves an already-constructed server (testServer
// always builds a fresh one with no snapshot dir).
func newTestServerFor(t *testing.T, s *server) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(s.routes())
	t.Cleanup(srv.Close)
	return srv
}

// TestLazyEngineRecoversFromPanic is the regression test for the
// sync.Once poisoning: a panic during the first build must not
// condemn every later request to a nil engine.
func TestLazyEngineRecoversFromPanic(t *testing.T) {
	calls := 0
	l := &lazyEngine{build: func() *engine.Engine {
		calls++
		if calls == 1 {
			panic("transient build failure")
		}
		return engine.New(dataset.ProductReviews(dataset.ReviewsConfig{Seed: 2, ProductsPerCategory: 1}))
	}}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first get should propagate the build panic")
			}
		}()
		l.get()
	}()

	eng := l.get()
	if eng == nil {
		t.Fatal("second get returned nil: the failed build poisoned the slot")
	}
	if l.get() != eng {
		t.Fatal("later gets must share the one built engine")
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (one failure + one retry)", calls)
	}
}

// captureLog redirects the standard logger during fn and returns what
// it wrote.
func captureLog(t *testing.T, fn func()) string {
	t.Helper()
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)
	fn()
	return buf.String()
}

// TestSnapshotLifecycle drives buildEngine through the full snapshot
// cycle: fresh build writes the file, the next startup loads it
// instead of rebuilding, and a corrupt file falls back to a rebuild
// that replaces it.
func TestSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	gen := func() *xmltree.Node {
		return dataset.ProductReviews(dataset.ReviewsConfig{Seed: 5})
	}

	var first *engine.Engine
	out := captureLog(t, func() {
		first = buildEngine("Product Reviews", "reviews", 5, dir, 1, 0, persist.CompactFormatVersion, gen)
	})
	if !strings.Contains(out, "wrote snapshot") {
		t.Fatalf("first build should write a snapshot, log:\n%s", out)
	}
	path := filepath.Join(dir, "reviews-seed5.snap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	var second *engine.Engine
	out = captureLog(t, func() {
		second = buildEngine("Product Reviews", "reviews", 5, dir, 1, 0, persist.CompactFormatVersion, gen)
	})
	if !strings.Contains(out, "loaded from snapshot") {
		t.Fatalf("second startup should load the snapshot, log:\n%s", out)
	}
	want, err := first.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	got, err := second.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot-loaded engine: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("result %d: %q vs %q", i, got[i].Label, want[i].Label)
		}
	}

	// A different seed must not accept this snapshot's file name
	// collision — and a corrupt file must cost only a rebuild.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var third *engine.Engine
	out = captureLog(t, func() {
		third = buildEngine("Product Reviews", "reviews", 5, dir, 1, 0, persist.CompactFormatVersion, gen)
	})
	if !strings.Contains(out, "rebuilding") || !strings.Contains(out, "wrote snapshot") {
		t.Fatalf("corrupt snapshot should rebuild and rewrite, log:\n%s", out)
	}
	if rs, err := third.Search("tomtom gps"); err != nil || len(rs) != len(want) {
		t.Fatalf("rebuilt engine broken: %d results, err %v", len(rs), err)
	}
}

// TestServerSecondStartupFromSnapshot exercises the lifecycle through
// the real server plumbing: two servers sharing a snapshot dir must
// serve identical JSON, the second from disk.
func TestServerSecondStartupFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	serve := func() (string, string) {
		s, err := newServer(1, dir, 1, 0, persist.CompactFormatVersion)
		if err != nil {
			t.Fatal(err)
		}
		srv := newTestServerFor(t, s)
		var logOut string
		var body string
		logOut = captureLog(t, func() {
			_, body = get(t, srv.URL+"/api/v1/search?dataset=Movies&q=horror+vampire")
		})
		return body, logOut
	}
	firstBody, firstLog := serve()
	if !strings.Contains(firstLog, "wrote snapshot") {
		t.Fatalf("first server should snapshot after building, log:\n%s", firstLog)
	}
	secondBody, secondLog := serve()
	if !strings.Contains(secondLog, "loaded from snapshot") {
		t.Fatalf("second server should start from the snapshot, log:\n%s", secondLog)
	}
	if secondBody != firstBody {
		t.Fatalf("snapshot-served response differs:\n%s\nvs\n%s", secondBody, firstBody)
	}
}

func decodeJSON[T any](t *testing.T, body string) T {
	t.Helper()
	var v T
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		t.Fatalf("response is not well-formed JSON: %v\n%s", err, body)
	}
	return v
}

func TestAPISearch(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/search?dataset=Product+Reviews&q=tomtim+gps")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	resp := decodeJSON[searchResponse](t, body)
	if resp.Dataset != "Product Reviews" || len(resp.Results) == 0 {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.Cleaned) != 2 || resp.Cleaned[0] != "tomtom" {
		t.Fatalf("typo not cleaned: %v", resp.Cleaned)
	}
	for i, r := range resp.Results {
		if r.Index != i || r.Label == "" || r.ID == "" {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}

	// Parity with the HTML path: same result count.
	_, page := get(t, srv.URL+"/?dataset=Product+Reviews&q=tomtim+gps")
	m := regexp.MustCompile(`<h2>(\d+) results</h2>`).FindStringSubmatch(page)
	if m == nil || m[1] != fmt.Sprint(len(resp.Results)) {
		t.Fatalf("JSON returned %d results, HTML header %v", len(resp.Results), m)
	}
}

// TestAPISearchStreamed: exec=stream serves the same window as the
// eager default, reports total -1 while the stream has not reached the
// end of the results, discovers the exact total once a window drains
// the stream, and rejects unknown exec values.
func TestAPISearchStreamed(t *testing.T) {
	srv := testServer(t)
	base := srv.URL + "/api/v1/search?dataset=Product+Reviews&q=tomtom+gps"
	_, eagerBody := get(t, base+"&limit=1")
	eager := decodeJSON[searchResponse](t, eagerBody)
	if eager.Total <= 1 {
		t.Fatalf("fixture too small for early termination: total %d", eager.Total)
	}

	code, body := get(t, base+"&limit=1&exec=stream")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	streamed := decodeJSON[searchResponse](t, body)
	if streamed.Total != -1 {
		t.Fatalf("early-stopped streamed total = %d, want -1", streamed.Total)
	}
	if len(streamed.Results) != len(eager.Results) {
		t.Fatalf("streamed window has %d results, eager %d", len(streamed.Results), len(eager.Results))
	}
	for i := range eager.Results {
		if streamed.Results[i] != eager.Results[i] {
			t.Fatalf("streamed result %d = %+v, eager %+v", i, streamed.Results[i], eager.Results[i])
		}
	}

	// An unbounded streamed request drains the cursor: exact total, and
	// the full lists agree.
	_, body = get(t, base+"&exec=stream")
	drained := decodeJSON[searchResponse](t, body)
	if drained.Total != eager.Total || len(drained.Results) != eager.Total {
		t.Fatalf("drained stream: total %d, %d results, want %d", drained.Total, len(drained.Results), eager.Total)
	}

	// eager and auto are synonyms of the default.
	for _, exec := range []string{"eager", "auto"} {
		_, body = get(t, base+"&limit=1&exec="+exec)
		if resp := decodeJSON[searchResponse](t, body); resp.Total != eager.Total {
			t.Fatalf("exec=%s total = %d, want %d", exec, resp.Total, eager.Total)
		}
	}

	code, body = get(t, base+"&exec=bogus")
	if code != http.StatusBadRequest || !strings.Contains(body, `"error"`) {
		t.Fatalf("bad exec: status %d body %s", code, body)
	}

	// The streamed counters surface in the metrics endpoint.
	_, body = get(t, srv.URL+"/api/v1/metrics")
	for _, field := range []string{"stream_hits", "stream_misses", "stream_cursor_len", "planner_streamed", "ranked_streamed", "ranked_eager"} {
		if !strings.Contains(body, `"`+field+`"`) {
			t.Fatalf("metrics missing %q: %s", field, body)
		}
	}
}

func TestAPISearchNoMatch(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/search?dataset=Movies&q=zzznope")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	resp := decodeJSON[searchResponse](t, body)
	if len(resp.Results) != 0 || len(resp.Missing) == 0 {
		t.Fatalf("no-match response = %+v", resp)
	}
}

func TestAPISearchErrors(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"dataset=Nope&q=x", http.StatusBadRequest},
		{"dataset=Movies", http.StatusBadRequest},
		{"dataset=" + url.QueryEscape(autoDataset) + "&q=xyzzyplugh", http.StatusNotFound},
	} {
		code, body := get(t, srv.URL+"/api/v1/search?"+tc.query)
		if code != tc.want {
			t.Fatalf("%s: status = %d, want %d", tc.query, code, tc.want)
		}
		if !strings.Contains(body, `"error"`) {
			t.Fatalf("%s: error not JSON-enveloped: %s", tc.query, body)
		}
	}
}

func TestAPISearchAutoSelect(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/search?dataset="+url.QueryEscape(autoDataset)+"&q=horror+vampire")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	resp := decodeJSON[searchResponse](t, body)
	if resp.Dataset != "Movies" {
		t.Fatalf("auto-select routed to %q, want Movies", resp.Dataset)
	}
}

func TestAPICompare(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"L":       {"8"},
		"alg":     {"multi-swap"},
		"sel":     {"0", "1"},
	}
	code, body := get(t, srv.URL+"/api/v1/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	resp := decodeJSON[compareResponse](t, body)
	if resp.Algorithm != "multi-swap" || resp.SizeBound != 8 {
		t.Fatalf("response header = %+v", resp)
	}
	if len(resp.Labels) != 2 || len(resp.Rows) == 0 {
		t.Fatalf("table shape: %d labels, %d rows", len(resp.Labels), len(resp.Rows))
	}
	known := 0
	for _, row := range resp.Rows {
		if len(row.Cells) != 2 {
			t.Fatalf("row %s:%s has %d cells, want 2", row.Entity, row.Attribute, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.Known {
				known++
				if len(c.Values) == 0 {
					t.Fatalf("known cell in %s:%s has no values", row.Entity, row.Attribute)
				}
			}
		}
	}
	if known == 0 {
		t.Fatal("comparison table has no known cells")
	}

	// Parity with the HTML path: identical total DoD.
	_, page := get(t, srv.URL+"/compare?"+params.Encode())
	m := regexp.MustCompile(`total DoD = (\d+)`).FindStringSubmatch(page)
	if m == nil || m[1] != fmt.Sprint(resp.DoD) {
		t.Fatalf("JSON DoD %d, HTML %v", resp.DoD, m)
	}
}

func TestAPICompareErrors(t *testing.T) {
	srv := testServer(t)
	cases := []url.Values{
		{"dataset": {"Nope"}, "q": {"x"}, "sel": {"0", "1"}},
		{"dataset": {"Product Reviews"}, "q": {"tomtom gps"}, "sel": {"0"}},
		{"dataset": {"Product Reviews"}, "q": {"tomtom gps"}, "sel": {"0", "9999"}},
		{"dataset": {"Product Reviews"}, "q": {"tomtom gps"}, "sel": {"0", "1"}, "alg": {"bogus"}},
	}
	for i, params := range cases {
		code, body := get(t, srv.URL+"/api/v1/compare?"+params.Encode())
		if code != http.StatusBadRequest {
			t.Fatalf("case %d: status = %d, want 400", i, code)
		}
		if !strings.Contains(body, `"error"`) {
			t.Fatalf("case %d: error not JSON-enveloped: %s", i, body)
		}
	}
}

// TestCompareClampsSizeBound is the regression test for unbounded
// user-supplied table sizes: absurd L values clamp to maxSizeBound on
// both the HTML and JSON paths.
func TestCompareClampsSizeBound(t *testing.T) {
	srv := testServer(t)
	params := url.Values{
		"dataset": {"Product Reviews"},
		"q":       {"tomtom gps"},
		"L":       {"999999"},
		"alg":     {"top-k"},
		"sel":     {"0", "1"},
	}
	code, body := get(t, srv.URL+"/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, fmt.Sprintf("L=%d", maxSizeBound)) {
		t.Fatalf("HTML compare did not clamp L, body header: %.200s", body)
	}
	code, jsonBody := get(t, srv.URL+"/api/v1/compare?"+params.Encode())
	if code != http.StatusOK {
		t.Fatalf("api status = %d", code)
	}
	if resp := decodeJSON[compareResponse](t, jsonBody); resp.SizeBound != maxSizeBound {
		t.Fatalf("API size_bound = %d, want clamp to %d", resp.SizeBound, maxSizeBound)
	}
}

func TestAPISnippet(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/snippet?dataset=Product+Reviews&q=tomtom+gps&idx=0&size=5")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	resp := decodeJSON[snippetResponse](t, body)
	if resp.Label == "" || len(resp.Features) == 0 || len(resp.Features) > 5 {
		t.Fatalf("snippet response = %+v", resp)
	}
	for _, f := range resp.Features {
		if f.Entity == "" || f.Attribute == "" {
			t.Fatalf("malformed feature %+v", f)
		}
	}
	for _, idx := range []string{"-1", "9999", "x"} {
		code, _ := get(t, srv.URL+"/api/v1/snippet?dataset=Product+Reviews&q=tomtom+gps&idx="+idx)
		if code != http.StatusBadRequest {
			t.Fatalf("idx %q: status = %d, want 400", idx, code)
		}
	}
}

// TestAPIDatasetDefaults: compare and snippet accept the same dataset
// spellings search does — omitted (first dataset) and auto-select.
func TestAPIDatasetDefaults(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/compare?q=tomtom+gps&sel=0&sel=1")
	if code != http.StatusOK {
		t.Fatalf("compare without dataset: status = %d: %s", code, body)
	}
	if resp := decodeJSON[compareResponse](t, body); resp.Dataset != "Product Reviews" {
		t.Fatalf("compare defaulted to %q", resp.Dataset)
	}
	code, body = get(t, srv.URL+"/api/v1/snippet?q=tomtom+gps&idx=0")
	if code != http.StatusOK {
		t.Fatalf("snippet without dataset: status = %d: %s", code, body)
	}
	code, body = get(t, srv.URL+"/api/v1/compare?dataset="+url.QueryEscape(autoDataset)+"&q=horror+vampire&sel=0&sel=1")
	if code != http.StatusOK {
		t.Fatalf("compare with auto-select: status = %d: %s", code, body)
	}
	if resp := decodeJSON[compareResponse](t, body); resp.Dataset != "Movies" {
		t.Fatalf("auto-select compare routed to %q", resp.Dataset)
	}
}

// TestAPISnippetBiasUsesCleanedQuery: a typo query must produce the
// same snippet as its corrected form — bias runs on the keywords the
// result actually answers.
func TestAPISnippetBiasUsesCleanedQuery(t *testing.T) {
	srv := testServer(t)
	_, typo := get(t, srv.URL+"/api/v1/snippet?dataset=Product+Reviews&q=tomtim&idx=0&size=4")
	_, exact := get(t, srv.URL+"/api/v1/snippet?dataset=Product+Reviews&q=tomtom&idx=0&size=4")
	a := decodeJSON[snippetResponse](t, typo)
	b := decodeJSON[snippetResponse](t, exact)
	if a.Label != b.Label || len(a.Features) != len(b.Features) {
		t.Fatalf("typo snippet diverges: %+v vs %+v", a, b)
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("feature %d: %+v vs %+v (bias not using cleaned query?)", i, a.Features[i], b.Features[i])
		}
	}
}

func TestAPIMetrics(t *testing.T) {
	srv := testServer(t)
	// Before any traffic the probe must not force engine builds.
	code, body := get(t, srv.URL+"/api/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	resp := decodeJSON[metricsResponse](t, body)
	if len(resp.Datasets) != 3 {
		t.Fatalf("metrics cover %d datasets, want 3", len(resp.Datasets))
	}
	for name, dm := range resp.Datasets {
		if dm.Built {
			t.Fatalf("metrics probe built engine %q", name)
		}
	}

	// After one search + one repeat, the dataset reports cache traffic.
	get(t, srv.URL+"/api/v1/search?dataset=Movies&q=horror")
	get(t, srv.URL+"/api/v1/search?dataset=Movies&q=horror")
	_, body = get(t, srv.URL+"/api/v1/metrics")
	resp = decodeJSON[metricsResponse](t, body)
	movies := resp.Datasets["Movies"]
	if !movies.Built || movies.Engine == nil || movies.Index == nil {
		t.Fatalf("Movies metrics after traffic = %+v", movies)
	}
	if movies.Engine.QueryHits < 1 || movies.Engine.QueryMisses < 1 {
		t.Fatalf("query counters = %+v", movies.Engine)
	}
	if movies.Index.IndexedElements <= 0 || movies.Index.IndexedElements >= movies.Index.Postings {
		t.Fatalf("index stats implausible: %+v", movies.Index)
	}
}

// TestAPISearchPagination checks the paging envelope and the
// page-concatenation invariant at the JSON level: pages of limit 3
// reassemble the unpaginated result list exactly, with global indices.
func TestAPISearchPagination(t *testing.T) {
	srv := testServer(t)
	base := srv.URL + "/api/v1/search?dataset=Movies&q=thriller"
	code, body := get(t, base)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	full := decodeJSON[searchResponse](t, body)
	if full.Total != len(full.Results) || full.Offset != 0 || full.Returned != len(full.Results) {
		t.Fatalf("unpaginated envelope = total %d, offset %d, returned %d over %d results",
			full.Total, full.Offset, full.Returned, len(full.Results))
	}
	if full.Total < 4 {
		t.Fatalf("corpus too small for pagination test: %d results", full.Total)
	}

	var got []apiResult
	for off := 0; off < full.Total; off += 3 {
		code, body := get(t, fmt.Sprintf("%s&limit=3&offset=%d", base, off))
		if code != http.StatusOK {
			t.Fatalf("offset %d: status = %d: %s", off, code, body)
		}
		page := decodeJSON[searchResponse](t, body)
		if page.Total != full.Total || page.Offset != off || page.Returned != len(page.Results) {
			t.Fatalf("offset %d: envelope = %+v", off, page)
		}
		got = append(got, page.Results...)
	}
	if len(got) != full.Total {
		t.Fatalf("concatenated %d results, want %d", len(got), full.Total)
	}
	for i, r := range got {
		if r.Index != i || r.ID != full.Results[i].ID || r.Label != full.Results[i].Label {
			t.Fatalf("page concat diverges at %d: %+v vs %+v", i, r, full.Results[i])
		}
	}

	// Out-of-range offset: well-formed empty page, not an error.
	code, body = get(t, base+"&limit=3&offset=100000")
	if code != http.StatusOK {
		t.Fatalf("out-of-range offset: status = %d: %s", code, body)
	}
	page := decodeJSON[searchResponse](t, body)
	if page.Returned != 0 || len(page.Results) != 0 || page.Total != full.Total {
		t.Fatalf("out-of-range page = %+v", page)
	}
}

// TestAPIMetricsPlannerCounters checks that /api/v1/metrics surfaces
// the SLCA planner's decision counters once an engine has served a
// compiled query.
func TestAPIMetricsPlannerCounters(t *testing.T) {
	srv := testServer(t)
	if code, body := get(t, srv.URL+"/api/v1/search?dataset=Movies&q=thriller+detective"); code != http.StatusOK {
		t.Fatalf("warm-up search failed: %d %s", code, body)
	}
	code, body := get(t, srv.URL+"/api/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, field := range []string{"planner_indexed_lookup", "planner_scan_eager", "stats_evictions"} {
		if !strings.Contains(body, field) {
			t.Fatalf("metrics missing %q: %s", field, body)
		}
	}
	resp := decodeJSON[metricsResponse](t, body)
	m := resp.Datasets["Movies"]
	if !m.Built || m.Engine == nil {
		t.Fatalf("Movies engine not reported built: %+v", m)
	}
	if m.Engine.PlannerIndexedLookup+m.Engine.PlannerScanEager < 1 {
		t.Fatalf("planner counters = %+v, want at least one decision", m.Engine)
	}
}

// TestAPISearchHugeLimit is the overflow regression test: a limit that
// strconv.Atoi range-clamps to MaxInt must behave like "no limit", not
// overflow the window arithmetic into a slice-bounds panic.
func TestAPISearchHugeLimit(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv.URL+"/api/v1/search?dataset=Movies&q=thriller&limit=99999999999999999999&offset=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	resp := decodeJSON[searchResponse](t, body)
	if resp.Offset != 1 || resp.Returned != resp.Total-1 || len(resp.Results) != resp.Returned {
		t.Fatalf("huge-limit envelope = total %d, offset %d, returned %d over %d results",
			resp.Total, resp.Offset, resp.Returned, len(resp.Results))
	}
}
