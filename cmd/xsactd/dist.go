package main

// Distributed roles: `xsactd -shard-server -shard-id=i -shard-count=K`
// turns the binary into one shard leg serving its group of every
// built-in dataset over the versioned wire API; `xsactd
// -coordinator=url1,url2,...` serves the normal web UI and JSON API,
// but every query fans out to the legs over HTTP and every write is
// broadcast under the epoch protocol. Results are bit-identical to a
// single process running with -shards=K.

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/persist"
	"repro/internal/xmltree"
)

// datasetDef is one built-in dataset: its menu name (also the wire
// corpus key), snapshot slug, and deterministic generator. Both roles
// build from the same table, so a coordinator and its legs always
// agree on corpus names and trees.
type datasetDef struct {
	name, slug string
	gen        func() *xmltree.Node
}

func datasetDefs(seed int64) []datasetDef {
	return []datasetDef{
		{"Product Reviews", "reviews", func() *xmltree.Node {
			return dataset.ProductReviews(dataset.ReviewsConfig{Seed: seed})
		}},
		{"Outdoor Retailer", "retailer", func() *xmltree.Node {
			return dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: seed})
		}},
		{"Movies", "movies", func() *xmltree.Node {
			return dataset.Movies(dataset.MoviesConfig{Seed: seed})
		}},
	}
}

// groupSnapshotFile names a shard server's per-corpus group snapshot.
func groupSnapshotFile(slug string, seed int64, shardID int) string {
	return fmt.Sprintf("%s-seed%d-shard%d.sgroup", slug, seed, shardID)
}

// runShardServer serves one shard leg of every dataset. With a
// snapshot dir, each corpus is restored from its group snapshot when
// one is present (resuming at the pre-crash epoch); with a peer, a
// live replica is asked for its snapshot too, and whichever source is
// at the higher epoch wins — the self-healing path that lets a
// replica rejoin a cluster that moved on while it was down. With
// neither (or when both fail) the corpus bootstraps fresh at epoch 0;
// /shard/v1/snapshot serves the bytes a replacement process restores
// from.
func runShardServer(addr string, seed int64, shardID, shardCount int, snapshotDir, peer string) error {
	srv, err := dist.NewServer(shardID, shardCount)
	if err != nil {
		return err
	}
	for _, d := range datasetDefs(seed) {
		snap := loadGroupSnapshot(d, seed, shardID, snapshotDir, peer)
		if snap != nil {
			if err := srv.RestoreCorpus(d.name, snap); err == nil {
				log.Printf("xsactd: %s: restored at epoch %d", d.name, snap.Epoch)
				continue
			} else {
				log.Printf("xsactd: %s: restore failed (%v); bootstrapping fresh", d.name, err)
			}
		}
		if err := srv.AddCorpus(d.name, d.gen()); err != nil {
			return fmt.Errorf("%s: %w", d.name, err)
		}
	}
	log.Printf("xsactd shard server %d/%d listening on %s", shardID, shardCount, addr)
	return http.ListenAndServe(addr, srv)
}

// loadGroupSnapshot picks one corpus's best restore source: the local
// group snapshot file, a live peer replica's snapshot, or neither.
// When both are available the higher epoch wins — a local file that
// survived the crash may still be stale against a peer that kept
// taking writes. Failures are never fatal — a missing or corrupt
// source just costs a fresh bootstrap (at epoch 0; the coordinator's
// Dial validation catches a leg that lost its writes).
func loadGroupSnapshot(d datasetDef, seed int64, shardID int, snapshotDir, peer string) *persist.GroupSnapshot {
	var local *persist.GroupSnapshot
	if snapshotDir != "" {
		path := filepath.Join(snapshotDir, groupSnapshotFile(d.slug, seed, shardID))
		local = readGroupFile(d.name, path)
	}
	if peer != "" {
		remote, err := dist.FetchSnapshot(peer, d.name, 0)
		if err != nil {
			log.Printf("xsactd: %s: peer snapshot from %s unavailable (%v)", d.name, peer, err)
		} else if local == nil || remote.Epoch > local.Epoch {
			if local != nil {
				log.Printf("xsactd: %s: local snapshot stale (epoch %d < peer %d); using peer", d.name, local.Epoch, remote.Epoch)
			}
			return remote
		}
	}
	return local
}

// readGroupFile decodes one group snapshot file, nil on any failure.
func readGroupFile(name, path string) *persist.GroupSnapshot {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	snap, err := persist.DecodeGroup(f)
	if err != nil {
		log.Printf("xsactd: %s: group snapshot %s unusable (%v)", name, path, err)
		return nil
	}
	return snap
}

// newCoordinatorServer assembles the web server in coordinator mode:
// every dataset's engine is a distributed coordinator dialed over the
// shard endpoints, wrapped in the same serving layer (caches, ranked
// retries, streamed routing) the in-process engines use. Engines stay
// lazy — a dataset's legs are only dialed when the first request
// touches it.
func newCoordinatorServer(seed int64, endpoints []string, replicas, compactEvery int, cfg dist.Config) (*server, error) {
	groups, err := dist.GroupEndpoints(endpoints, replicas)
	if err != nil {
		return nil, err
	}
	s := &server{
		datasets: make(map[string]*lazyEngine), slugs: make(map[string]string),
		seed: seed,
	}
	for _, d := range datasetDefs(seed) {
		d := d
		s.datasets[d.name] = &lazyEngine{build: func() *engine.Engine {
			co, err := dist.DialReplicas(groups, d.name, d.gen(), cfg)
			if err != nil {
				log.Printf("xsactd: %s: dialing shard cluster failed: %v", d.name, err)
				panic(err) // unwinds through lazyEngine; the next request retries
			}
			return engine.FromDist(co, engine.Config{AutoCompactThreshold: compactEvery})
		}}
		s.order = append(s.order, d.name)
		s.slugs[d.name] = d.slug
	}
	return s, nil
}
