package xsact

// Stress test at the paper's stated data scale: "a product can have
// hundreds of reviews ... and a brand can have hundreds of products",
// and the demo claim that comparison tables are generated "in a short
// period of time" despite that. Skipped with -short.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/xseek"
)

func TestStressHundredsOfReviews(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	root := dataset.ProductReviews(dataset.ReviewsConfig{
		Seed:                99,
		ProductsPerCategory: 10,
		MinReviews:          200,
		MaxReviews:          400,
	})
	eng := xseek.New(root)
	results, err := eng.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("results = %d", len(results))
	}
	start := time.Now()
	stats := make([]*feature.Stats, len(results))
	for i, r := range results {
		stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
	}
	extractTime := time.Since(start)

	start = time.Now()
	dfss := core.MultiSwap(stats, core.Options{SizeBound: 10, Threshold: 0.1, Pad: true})
	genTime := time.Since(start)

	for _, d := range dfss {
		if err := d.Validate(10); err != nil {
			t.Fatal(err)
		}
	}
	if dod := core.TotalDoD(dfss, 0.1); dod <= 0 {
		t.Fatalf("no differentiation at scale: DoD = %d", dod)
	}
	// "Short period of time": generous CI-safe bound, far above what
	// the run actually needs but catching quadratic blowups.
	if genTime > 5*time.Second {
		t.Fatalf("DFS generation took %v over hundreds-of-reviews corpus", genTime)
	}
	t.Logf("extract=%v generate=%v over %d results", extractTime, genTime, len(results))
}

func TestStressHundredsOfProductsPerBrand(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	doc := FromTree(dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: 99, ProductsPerBrand: 300}))
	products, err := doc.Search("men jackets")
	if err != nil {
		t.Fatal(err)
	}
	var brands []*Result
	for _, p := range products {
		brands = append(brands, p.Lift("brand"))
	}
	brands = Dedupe(brands)
	if len(brands) < 4 {
		t.Fatalf("brands = %d", len(brands))
	}
	start := time.Now()
	cmp, err := Compare(brands, CompareOptions{SizeBound: 12})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("brand comparison took %v at 300 products/brand", elapsed)
	}
	if cmp.DoD <= 0 {
		t.Fatal("no differentiation across big brands")
	}
}
