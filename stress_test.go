package xsact

// Stress test at the paper's stated data scale: "a product can have
// hundreds of reviews ... and a brand can have hundreds of products",
// and the demo claim that comparison tables are generated "in a short
// period of time" despite that. Skipped with -short.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feature"
	"repro/internal/xseek"
)

func TestStressHundredsOfReviews(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	root := dataset.ProductReviews(dataset.ReviewsConfig{
		Seed:                99,
		ProductsPerCategory: 10,
		MinReviews:          200,
		MaxReviews:          400,
	})
	eng := xseek.New(root)
	results, err := eng.Search("gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("results = %d", len(results))
	}
	start := time.Now()
	stats := make([]*feature.Stats, len(results))
	for i, r := range results {
		stats[i] = feature.Extract(r.Node, eng.Schema(), r.Label)
	}
	extractTime := time.Since(start)

	start = time.Now()
	dfss := core.MultiSwap(stats, core.Options{SizeBound: 10, Threshold: 0.1, Pad: true})
	genTime := time.Since(start)

	for _, d := range dfss {
		if err := d.Validate(10); err != nil {
			t.Fatal(err)
		}
	}
	if dod := core.TotalDoD(dfss, 0.1); dod <= 0 {
		t.Fatalf("no differentiation at scale: DoD = %d", dod)
	}
	// "Short period of time": generous CI-safe bound, far above what
	// the run actually needs but catching quadratic blowups.
	if genTime > 5*time.Second {
		t.Fatalf("DFS generation took %v over hundreds-of-reviews corpus", genTime)
	}
	t.Logf("extract=%v generate=%v over %d results", extractTime, genTime, len(results))
}

// TestStressLiveUpdatesUnderLoad hammers a live document with
// concurrent searchers, rankers, and snippet readers while a writer
// streams adds, removes, and compactions through the facade. Run with
// -race this exercises the full serving stack's epoch-swap coherence:
// cached outcomes must never leak across writes, and every observed
// answer must be well-formed. Skipped with -short.
func TestStressLiveUpdatesUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			doc, err := BuiltinDatasetWith("reviews", 3, Options{Shards: shards, AutoCompactEvery: 16})
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					queries := []string{"tomtom gps", "camera", "stressterm", "gps"}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						q := queries[(i+r)%len(queries)]
						results, _, total, err := doc.SearchRankedPage(q, 5, 0)
						if err != nil {
							continue
						}
						if len(results) > total {
							t.Errorf("page of %d results from a total of %d", len(results), total)
							return
						}
						if len(results) >= 2 {
							if _, err := Compare(results[:2], CompareOptions{SizeBound: 6}); err != nil {
								t.Error(err)
								return
							}
						}
						for _, res := range results {
							if res.Describe() == "" {
								t.Error("empty result description")
								return
							}
						}
					}
				}(r)
			}

			var added []string
			for op := 0; op < 80; op++ {
				switch {
				case op%4 == 3 && len(added) > 0:
					// A background auto-compaction may have renumbered and
					// invalidated the handle; that's the documented contract
					// (IDs are positional addresses), so a miss is fine.
					_ = doc.RemoveEntity(added[0])
					added = added[1:]
				case op%10 == 9:
					if err := doc.Compact(); err != nil {
						t.Fatal(err)
					}
					added = nil // compaction renumbers; drop stale handles
				default:
					id, err := doc.AddEntity(fmt.Sprintf(
						"<product><name>StressItem %d</name><category>stressterm gadget</category></product>", op))
					if err != nil {
						t.Fatal(err)
					}
					added = append(added, id)
				}
			}
			close(stop)
			readers.Wait()

			// The writer's entities that survived must be searchable, and
			// the backlog must drain on a final compaction.
			if err := doc.Compact(); err != nil {
				t.Fatal(err)
			}
			if delta, tombs := doc.PendingUpdates(); delta != 0 || tombs != 0 {
				t.Fatalf("backlog after final compaction: %d/%d", delta, tombs)
			}
			results, err := doc.Search("stressterm")
			if err != nil {
				t.Fatal(err)
			}
			if len(results) == 0 {
				t.Fatal("no stress entities survived")
			}
		})
	}
}

func TestStressHundredsOfProductsPerBrand(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	doc := FromTree(dataset.OutdoorRetailer(dataset.RetailerConfig{Seed: 99, ProductsPerBrand: 300}))
	products, err := doc.Search("men jackets")
	if err != nil {
		t.Fatal(err)
	}
	var brands []*Result
	for _, p := range products {
		brands = append(brands, p.Lift("brand"))
	}
	brands = Dedupe(brands)
	if len(brands) < 4 {
		t.Fatalf("brands = %d", len(brands))
	}
	start := time.Now()
	cmp, err := Compare(brands, CompareOptions{SizeBound: 12})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("brand comparison took %v at 300 products/brand", elapsed)
	}
	if cmp.DoD <= 0 {
		t.Fatal("no differentiation across big brands")
	}
}
