package xsact

import (
	"strings"
	"testing"
)

const demoDoc = `
<store>
  <product>
    <name>TomTom Go 630</name>
    <rating>4.2</rating>
    <reviews>
      <review><pro>compact</pro><pro>easy to read</pro><bestuse>auto</bestuse></review>
      <review><pro>compact</pro></review>
    </reviews>
  </product>
  <product>
    <name>TomTom Go 730</name>
    <rating>4.1</rating>
    <reviews>
      <review><pro>easy to setup</pro><bestuse>fast routing</bestuse></review>
      <review><pro>easy to setup</pro><pro>compact</pro></review>
      <review><pro>acquire satellites quickly</pro></review>
    </reviews>
  </product>
</store>`

func TestEndToEndCompare(t *testing.T) {
	doc, err := ParseString(demoDoc)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("tomtom")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	cmp, err := Compare(results, CompareOptions{SizeBound: 6})
	if err != nil {
		t.Fatal(err)
	}
	out := cmp.Text()
	for _, want := range []string{"TomTom Go 630", "TomTom Go 730", "product:name"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison missing %q:\n%s", want, out)
		}
	}
	if cmp.DoD < 1 {
		t.Fatalf("DoD = %d, expected differentiation", cmp.DoD)
	}
	if h := cmp.HTML(); !strings.Contains(h, "<table") {
		t.Fatal("HTML rendering broken")
	}
}

func TestCompareErrors(t *testing.T) {
	doc, _ := ParseString(demoDoc)
	results, _ := doc.Search("tomtom")
	if _, err := Compare(results[:1], CompareOptions{}); err == nil {
		t.Fatal("single-result comparison should error")
	}
	if _, err := Compare(results, CompareOptions{Algorithm: "bogus"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	other, _ := ParseString(demoDoc)
	otherResults, _ := other.Search("tomtom")
	mixed := []*Result{results[0], otherResults[1]}
	if _, err := Compare(mixed, CompareOptions{}); err == nil {
		t.Fatal("cross-document comparison should error")
	}
}

func TestBuiltinDatasets(t *testing.T) {
	for _, name := range []string{"reviews", "retailer", "movies"} {
		doc, err := BuiltinDataset(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if doc.XML() == "" {
			t.Fatalf("%s: empty corpus", name)
		}
	}
	if _, err := BuiltinDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestSnippetAndDescribe(t *testing.T) {
	doc, _ := ParseString(demoDoc)
	results, _ := doc.Search("tomtom")
	s := results[0].Snippet("tomtom", 3)
	if !strings.Contains(s, "TomTom Go 630") {
		t.Fatalf("snippet = %q", s)
	}
	d := results[0].Describe()
	if !strings.Contains(d, "rating=4.2") {
		t.Fatalf("describe = %q", d)
	}
}

func TestLiftAndDedupe(t *testing.T) {
	doc, err := BuiltinDataset("retailer", 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("men jackets")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("results = %d", len(results))
	}
	var brands []*Result
	for _, r := range results {
		brands = append(brands, r.Lift("brand"))
	}
	brands = Dedupe(brands)
	if len(brands) >= len(results) {
		t.Fatalf("dedupe did not collapse products into brands: %d -> %d", len(results), len(brands))
	}
	for _, b := range brands {
		if b.Label == "" {
			t.Fatal("lifted result lost its label")
		}
	}
	// Lift to a non-existent ancestor is a no-op.
	same := results[0].Lift("nonexistent")
	if same.Label != results[0].Label {
		t.Fatal("Lift to missing tag should return the result unchanged")
	}
	cmp, err := Compare(brands[:3], CompareOptions{SizeBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DoD == 0 {
		t.Fatal("brand comparison should differentiate")
	}
}

func TestFigure1To2DoDGap(t *testing.T) {
	// The paper's qualitative claim (Figures 1 vs 2): independently
	// generated frequency summaries (top-k / snippets) differentiate
	// less than coordinated DFSs on the same size budget. Verified on
	// the Product Reviews corpus over the paper's walkthrough query.
	doc, err := BuiltinDataset("reviews", 1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := doc.Search("tomtom gps")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("results = %d", len(results))
	}
	sel := results[:2]
	top, err := Compare(sel, CompareOptions{SizeBound: 6, Algorithm: "top-k"})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Compare(sel, CompareOptions{SizeBound: 6, Algorithm: "multi-swap"})
	if err != nil {
		t.Fatal(err)
	}
	if multi.DoD < top.DoD {
		t.Fatalf("XSACT DoD %d < snippet-style DoD %d", multi.DoD, top.DoD)
	}
	t.Logf("snippet-style DoD = %d, XSACT DoD = %d", top.DoD, multi.DoD)
}
